//! Real-network UDP gateway for the multi-arena directory: ONE socket
//! serves every arena.
//!
//! ```text
//!   UDP 0.0.0.0:port ──(pump-in)──► Connect ──► directory front port
//!                                   Move/Disc ─► arena[book(cid)] port
//!   shared gateway fabric port ◄── every arena's replies ──(pump-out)──► UdpSocket
//! ```
//!
//! Where the single-world gateway (`crate::udp`) binds one socket per
//! server thread, the arena gateway demuxes all arenas over one socket:
//! `Connect`s go through the directory's admission stage (which picks
//! the arena and forwards in-fabric), while `Move`/`Disconnect`
//! datagrams are routed by the gateway straight to the client's placed
//! arena — learned from the `ConnectAck{arena}` stream on the way out,
//! so the data path skips the director entirely after admission.
//!
//! The same address-admission policy and seeded fault-injection stage
//! as the single-world gateway run in front of everything, and the
//! accounting is per arena: every inbound datagram has exactly one
//! fate at the gateway stage, every front-door datagram is drained or
//! queued, and per arena `pump_forwarded[k] + director_forwarded[k] ==
//! processed[k] + queue_dropped[k] + pending[k]` —
//! [`UdpArenaReport::accounted`] checks all three layers.

use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use parquake_arena::{spawn_directory, AdmissionPolicy, AdmissionStats, ArenaDirectoryConfig};
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::fault::{FaultConfig, FaultInjector};
use parquake_fabric::real::RealFabric;
use parquake_fabric::Nanos;
use parquake_protocol::{ClientMessage, Decode, ServerMessage, MAX_DATAGRAM};
use parquake_server::{ServerConfig, ServerKind};

use crate::udp::{admit, AddrEntry};

/// Arena-gateway options.
#[derive(Clone, Debug)]
pub struct UdpArenaOpts {
    /// The single UDP port every arena is served on.
    pub port: u16,
    /// Number of arenas.
    pub arenas: u32,
    /// Shared-pool worker tasks.
    pub workers: u32,
    /// Player capacity per arena.
    pub slots_per_arena: u16,
    pub map: MapGenConfig,
    /// Wall-clock run time.
    pub duration: Duration,
    /// Connect routing policy.
    pub policy: AdmissionPolicy,
    /// Inbound fault injection (drop/duplicate/delay); default none.
    pub fault: FaultConfig,
    /// Server-side inactivity timeout (0 = never reclaim).
    pub client_timeout: Duration,
    /// Elastic ceiling: the directory may grow past `arenas` up to
    /// this many live arenas under admission pressure (0 = fixed
    /// fleet).
    pub max_arenas: u32,
    /// How long an elastic arena's occupancy must stay zero before it
    /// is reaped.
    pub linger: Duration,
    /// Per-frame panic lottery probability; > 0 turns supervision on
    /// (checkpoint/restore + watchdog) and injects crashes.
    pub crash_rate: f32,
    /// Seed for the per-arena frame-fault lottery.
    pub crash_seed: u64,
    /// Live-migration spread threshold: when the hottest live arena
    /// holds at least this many more clients than the coldest open
    /// one, the director migrates one slot per tick (0 = off).
    pub migrate_spread: u32,
    /// Drain-before-reap: migrate the last residents out of a
    /// lingering elastic arena instead of waiting their sessions out.
    pub migrate_drain: bool,
}

impl Default for UdpArenaOpts {
    fn default() -> Self {
        UdpArenaOpts {
            port: 27500,
            arenas: 2,
            workers: 2,
            slots_per_arena: 32,
            map: MapGenConfig::small_arena(1),
            duration: Duration::from_secs(5),
            policy: AdmissionPolicy::Explicit,
            fault: FaultConfig::none(),
            client_timeout: Duration::from_secs(2),
            max_arenas: 0,
            linger: Duration::from_millis(500),
            crash_rate: 0.0,
            crash_seed: 0xC4A5_5EED,
            migrate_spread: 0,
            migrate_drain: false,
        }
    }
}

/// One arena's traffic lane through the gateway.
// lockcheck: identity(pump_forwarded + director_forwarded == processed + queue_dropped + pending_at_shutdown)
#[derive(Clone, Debug, Default)]
pub struct ArenaLane {
    /// Datagrams the pump routed straight to this arena's port.
    pub pump_forwarded: u64,
    /// Datagrams the director forwarded to this arena's port.
    pub director_forwarded: u64,
    /// Datagrams the arena drained from its port.
    pub processed: u64,
    /// Datagrams discarded by the arena port's bounded-queue policy.
    pub queue_dropped: u64,
    /// Datagrams still queued on the arena port at shutdown.
    pub pending_at_shutdown: u64,
    /// Replies the arena generated.
    pub replies: u64,
    /// Frames the arena executed.
    pub frames: u64,
    /// Clients the admission policy placed here.
    pub admitted: u64,
}

impl ArenaLane {
    /// Does every datagram that reached this arena's queue have exactly
    /// one fate?
    pub fn accounting_closed(&self) -> bool {
        self.pump_forwarded + self.director_forwarded
            == self.processed + self.queue_dropped + self.pending_at_shutdown
    }
}

/// Summary returned when the arena gateway shuts down.
// lockcheck: identity(datagrams_in == decode_rejected + spoof_rejected + arena_unknown + fault_dropped + delivered, and per-lane closure)
#[derive(Clone, Debug, Default)]
pub struct UdpArenaReport {
    /// Datagrams read off the socket.
    pub datagrams_in: u64,
    /// Inbound datagrams that failed protocol decode.
    pub decode_rejected: u64,
    /// Inbound datagrams refused by the address admission policy.
    pub spoof_rejected: u64,
    /// `Move`/`Disconnect` datagrams whose sender has no placed arena
    /// yet (ack in flight) — dropped, counted.
    pub arena_unknown: u64,
    /// Inbound datagrams eaten by the fault-injection stage.
    pub fault_dropped: u64,
    /// Extra copies created by the fault-injection stage.
    pub fault_duplicated: u64,
    /// Datagram copies handed to fabric ports (front door + arenas).
    pub forwarded: u64,
    /// Of `forwarded`, copies sent to the directory's front door.
    pub to_front: u64,
    /// Front-door datagrams the director drained.
    pub front_drained: u64,
    /// Front-door datagrams discarded by its bounded queue.
    pub front_queue_dropped: u64,
    /// Front-door datagrams still queued at shutdown.
    pub front_pending: u64,
    /// Datagrams written to the socket.
    pub datagrams_out: u64,
    /// Replies that never matched a learned client address.
    pub replies_unroutable: u64,
    /// Per-arena traffic lanes (one per provisioned cell — an elastic
    /// gateway has lanes past the boot fleet).
    pub lanes: Vec<ArenaLane>,
    /// Arena indices whose director-side counters were absent when the
    /// lanes were built — a provisioned cell the admission tables never
    /// heard of means the fleet views drifted, so the report refuses to
    /// close rather than silently zero-filling the lane.
    pub lanes_missing_counters: Vec<u16>,
    /// The director's routing counters.
    pub admission: AdmissionStats,
    /// Elastic spawn/reap accounting (fixed fleet ⇒ no events).
    pub elastic: parquake_metrics::ElasticStats,
    /// Supervision accounting (all-zero when `crash_rate` was 0).
    pub supervisor: parquake_metrics::SupervisorStats,
}

impl UdpArenaReport {
    /// Close the books at every layer: the gateway stage (decode →
    /// admission → arena lookup → fault lottery), the front door, and
    /// each arena's lane.
    pub fn accounting_closed(&self) -> bool {
        let delivered = self.forwarded - self.fault_duplicated;
        let gateway = self.datagrams_in
            == self.decode_rejected
                + self.spoof_rejected
                + self.arena_unknown
                + self.fault_dropped
                + delivered;
        let front =
            self.to_front == self.front_drained + self.front_queue_dropped + self.front_pending;
        gateway
            && front
            && self.lanes_missing_counters.is_empty()
            && self.lanes.iter().all(|l| l.accounting_closed())
    }
}

/// Apply one outbound fabric payload to the gateway's placement book
/// (client id → placed arena). Returns `Some(client_id)` when the
/// payload is a server message the client must receive — forward it —
/// and `None` for lifecycle notices and undecodable payloads, which
/// are gateway-internal and never go on the wire.
///
/// The directory's lifecycle tap mirrors every slot-churn notice here,
/// so placements learned from `ConnectAck`s are also *unlearned* when
/// the server drops the session without a `Bye` the gateway sees
/// (inactivity reclaims, direct disconnects) and *rebound* when a live
/// migration moves the slot. Before this, a stale entry misrouted
/// every subsequent `Move` to a world that no longer held the session.
pub fn apply_outbound(placements: &mut HashMap<u32, u16>, payload: &[u8]) -> Option<u32> {
    use parquake_server::LifecycleEvent;
    match ServerMessage::from_bytes(payload) {
        Ok(ServerMessage::ConnectAck {
            client_id, arena, ..
        }) => {
            // The ack names the serving arena: from now on the inbound
            // pump can route this client's moves without the director.
            placements.insert(client_id, arena);
            Some(client_id)
        }
        Ok(ServerMessage::Bye { client_id }) => {
            // The session is over server-side: forget the placement so
            // a reconnect re-admits instead of routing moves to a
            // freed (possibly reaped) arena.
            placements.remove(&client_id);
            Some(client_id)
        }
        Ok(ServerMessage::Reply { client_id, .. }) => Some(client_id),
        Err(_) => {
            match LifecycleEvent::from_bytes(payload) {
                Ok(LifecycleEvent::Connected {
                    arena, client_id, ..
                }) => {
                    placements.insert(client_id, arena);
                }
                Ok(LifecycleEvent::Disconnected { arena, client_id })
                | Ok(LifecycleEvent::Reclaimed {
                    arena, client_id, ..
                }) => {
                    // Evict only a booking *at that arena*: a late
                    // notice from an old placement must not kill a
                    // newer one elsewhere.
                    if placements.get(&client_id) == Some(&arena) {
                        placements.remove(&client_id);
                    }
                }
                Ok(LifecycleEvent::Migrated {
                    to_arena,
                    client_id,
                    ..
                }) => {
                    placements.insert(client_id, to_arena);
                }
                Ok(LifecycleEvent::Rejected { .. }) | Err(_) => {}
            }
            None
        }
    }
}

/// Run the arena directory behind one real UDP socket until
/// `opts.duration` elapses. Returns the layered traffic report.
pub fn run_udp_arena_server(opts: &UdpArenaOpts) -> std::io::Result<UdpArenaReport> {
    const REPLY_RETAIN: Duration = Duration::from_millis(250);

    let (real, fabric) = RealFabric::new_arc_pair();
    let end_time: Nanos = opts.duration.as_nanos() as Nanos;
    // One gateway fabric port carries every arena's replies out — and,
    // via the directory's lifecycle tap, every slot-churn notice, so
    // the placement book below tracks server-side evictions and
    // migrations the client never hears about directly.
    let gw = fabric.alloc_port();
    let mut server = ServerConfig::new(ServerKind::Sequential, end_time);
    server.client_timeout_ns = opts.client_timeout.as_nanos() as Nanos;
    let dir_cfg = ArenaDirectoryConfig {
        policy: opts.policy,
        scheduling: parquake_arena::ArenaScheduling::Pooled {
            workers: opts.workers,
        },
        map: opts.map.clone(),
        max_arenas: opts.max_arenas,
        linger_ns: opts.linger.as_nanos() as Nanos,
        supervision: opts.crash_rate > 0.0,
        frame_faults: (opts.crash_rate > 0.0).then(|| FaultConfig {
            panic_per_frame: opts.crash_rate,
            seed: opts.crash_seed,
            ..FaultConfig::none()
        }),
        migrate_spread: opts.migrate_spread,
        migrate_drain: opts.migrate_drain,
        lifecycle_tap: Some(gw),
        ..ArenaDirectoryConfig::new(opts.arenas, opts.slots_per_arena, server)
    };
    let handle = spawn_directory(&fabric, dir_cfg);
    // Every provisioned cell, including elastic headroom past the boot
    // fleet — the pump routes to (and the report covers) all of them.
    let cells = handle.arena_ports.len();

    let sock = UdpSocket::bind(("127.0.0.1", opts.port))?;
    sock.set_read_timeout(Some(Duration::from_millis(10)))?;

    let addrs: Arc<Mutex<HashMap<u32, AddrEntry>>> = Arc::new(Mutex::new(HashMap::new()));
    // client id → placed arena, learned from outbound ConnectAcks.
    let placements: Arc<Mutex<HashMap<u32, u16>>> = Arc::new(Mutex::new(HashMap::new()));
    let injector = Arc::new(FaultInjector::new(opts.fault.clone()));
    let rebind_grace = if opts.client_timeout.is_zero() {
        Duration::from_secs(1)
    } else {
        opts.client_timeout / 2
    };

    // Outbound pump: a fabric task draining the shared gateway port.
    let out_counters = Arc::new(Mutex::new((0u64, 0u64))); // (sent, unroutable)
    {
        let sock = sock.try_clone()?;
        let addrs = addrs.clone();
        let placements = placements.clone();
        let out_counters = out_counters.clone();
        fabric.spawn(
            "udp-arena-out",
            None,
            Box::new(move |ctx| {
                let mut sent = 0u64;
                let mut unroutable = 0u64;
                let mut held: Vec<(Instant, u32, Vec<u8>)> = Vec::new();
                loop {
                    let readable = ctx.wait_readable(gw, Some(end_time));
                    let now = Instant::now();
                    held.retain(|(since, cid, payload)| {
                        let addr = addrs.lock().unwrap().get(cid).map(|e| e.addr); // lockcheck: allow(raw-sync: OS-thread UDP bridge shares the address book outside the fabric)
                        if let Some(addr) = addr {
                            if sock.send_to(payload, addr).is_ok() {
                                sent += 1;
                            }
                            false
                        } else if now.duration_since(*since) >= REPLY_RETAIN {
                            unroutable += 1;
                            false
                        } else {
                            true
                        }
                    });
                    if !readable {
                        break;
                    }
                    while let Some(msg) = ctx.try_recv(gw) {
                        let client = {
                            let mut book = placements.lock().unwrap(); // lockcheck: allow(raw-sync: OS-thread UDP bridge shares the placement map outside the fabric)
                            apply_outbound(&mut book, &msg.payload)
                        };
                        let Some(cid) = client else { continue };
                        let addr = addrs.lock().unwrap().get(&cid).map(|e| e.addr); // lockcheck: allow(raw-sync: OS-thread UDP bridge shares the address book outside the fabric)
                        match addr {
                            Some(addr) => {
                                if sock.send_to(&msg.payload, addr).is_ok() {
                                    sent += 1;
                                }
                            }
                            None => held.push((Instant::now(), cid, msg.payload)),
                        }
                    }
                }
                unroutable += held.len() as u64;
                let mut c = out_counters.lock().unwrap(); // lockcheck: allow(raw-sync: OS-thread UDP bridge counters, aggregated after join)
                c.0 += sent;
                c.1 += unroutable;
            }),
        );
    }

    // Inbound pump: one OS thread demuxing the socket to all arenas.
    struct InCounters {
        datagrams_in: u64,
        decode_rejected: u64,
        spoof_rejected: u64,
        arena_unknown: u64,
        fault_dropped: u64,
        fault_duplicated: u64,
        to_front: u64,
        to_arena: Vec<u64>,
    }
    let pump = {
        let sock = sock.try_clone()?;
        let real = real.clone();
        let front = handle.front_port;
        let arena_port0: Vec<_> = handle.arena_ports.iter().map(|p| p[0]).collect();
        let addrs = addrs.clone();
        let placements = placements.clone();
        let injector = injector.clone();
        let deadline = Instant::now() + opts.duration;
        std::thread::spawn(move || {
            let mut buf = [0u8; MAX_DATAGRAM];
            let mut c = InCounters {
                datagrams_in: 0,
                decode_rejected: 0,
                spoof_rejected: 0,
                arena_unknown: 0,
                fault_dropped: 0,
                fault_duplicated: 0,
                to_front: 0,
                to_arena: vec![0; arena_port0.len()],
            };
            // Delayed copies waiting to come due: (due, dest, payload).
            let mut held: Vec<(Instant, usize, Vec<u8>)> = Vec::new();
            // dest: usize::MAX = front door, else arena index.
            let deliver = |c: &mut InCounters, dest: usize, payload: Vec<u8>| {
                if dest == usize::MAX {
                    c.to_front += 1;
                    real.send_external(gw, front, payload);
                } else {
                    c.to_arena[dest] += 1;
                    real.send_external(gw, arena_port0[dest], payload);
                }
            };
            loop {
                let now = Instant::now();
                let mut i = 0;
                while i < held.len() {
                    if held[i].0 <= now {
                        let (_, dest, payload) = held.swap_remove(i);
                        deliver(&mut c, dest, payload);
                    } else {
                        i += 1;
                    }
                }
                if now >= deadline {
                    break;
                }
                match sock.recv_from(&mut buf) {
                    Ok((n, from)) => {
                        c.datagrams_in += 1;
                        let Ok(msg) = ClientMessage::from_bytes(&buf[..n]) else {
                            c.decode_rejected += 1;
                            continue;
                        };
                        let admitted = {
                            let mut book = addrs.lock().unwrap(); // lockcheck: allow(raw-sync: OS-thread UDP bridge shares the address book outside the fabric)
                            admit(&mut book, &msg, from, now, rebind_grace)
                        };
                        if !admitted {
                            c.spoof_rejected += 1;
                            continue;
                        }
                        // Route: Connects go through admission (the
                        // director picks the arena); moves/disconnects
                        // go straight to the placed arena.
                        let dest = match &msg {
                            ClientMessage::Connect { .. } => usize::MAX,
                            ClientMessage::Move { client_id, .. }
                            | ClientMessage::Disconnect { client_id } => {
                                let placed = placements.lock().unwrap().get(client_id).copied(); // lockcheck: allow(raw-sync: OS-thread UDP bridge shares the placement map outside the fabric)
                                match placed {
                                    Some(k) if (k as usize) < arena_port0.len() => k as usize,
                                    _ => {
                                        c.arena_unknown += 1;
                                        continue;
                                    }
                                }
                            }
                        };
                        let fates = injector.draw();
                        if fates.is_empty() {
                            c.fault_dropped += 1;
                            continue;
                        }
                        c.fault_duplicated += fates.len() as u64 - 1;
                        for extra in fates {
                            if extra == 0 {
                                deliver(&mut c, dest, buf[..n].to_vec());
                            } else {
                                held.push((
                                    now + Duration::from_nanos(extra),
                                    dest,
                                    buf[..n].to_vec(),
                                ));
                            }
                        }
                    }
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => break,
                }
            }
            // Late delivery is legal UDP: flush held copies so the
            // accounting identity closes exactly.
            for (_, dest, payload) in std::mem::take(&mut held) {
                deliver(&mut c, dest, payload);
            }
            c
        })
    };

    fabric.run();
    let c = pump.join().expect("inbound pump panicked");

    let admission = handle.admission.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
    let elastic = handle.elastic.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
    let supervisor = handle.supervisor.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
    let mut lanes = Vec::with_capacity(cells);
    let mut lanes_missing_counters: Vec<u16> = Vec::new();
    for k in 0..cells {
        let r = handle.results[k].lock().unwrap(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
        let m = r.merged();
        let port = handle.arena_ports[k][0];
        // A provisioned cell absent from the director's tables is a
        // drifted fleet view, not quiet traffic: record it so the
        // report refuses to close, instead of zero-filling silently.
        let director_forwarded = match admission.forwarded_per_arena.get(k) {
            Some(&v) => v,
            None => {
                lanes_missing_counters.push(k as u16);
                0
            }
        };
        let admitted = match admission.per_arena.get(k) {
            Some(&v) => v,
            None => {
                if lanes_missing_counters.last() != Some(&(k as u16)) {
                    lanes_missing_counters.push(k as u16);
                }
                0
            }
        };
        lanes.push(ArenaLane {
            pump_forwarded: c.to_arena[k],
            director_forwarded,
            processed: m.datagrams,
            queue_dropped: fabric.port_dropped(port),
            pending_at_shutdown: fabric.port_pending(port) as u64,
            replies: m.replies,
            frames: r.frame_count,
            admitted,
        });
    }
    let (datagrams_out, replies_unroutable) = *out_counters.lock().unwrap(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
    let forwarded = c.to_front + c.to_arena.iter().sum::<u64>();
    Ok(UdpArenaReport {
        datagrams_in: c.datagrams_in,
        decode_rejected: c.decode_rejected,
        spoof_rejected: c.spoof_rejected,
        arena_unknown: c.arena_unknown,
        fault_dropped: c.fault_dropped,
        fault_duplicated: c.fault_duplicated,
        forwarded,
        to_front: c.to_front,
        front_drained: admission.drained(),
        front_queue_dropped: fabric.port_dropped(handle.front_port),
        front_pending: fabric.port_pending(handle.front_port) as u64,
        datagrams_out,
        replies_unroutable,
        lanes,
        lanes_missing_counters,
        admission,
        elastic,
        supervisor,
    })
}

/// A minimal real-UDP multi-arena client: drives `players` bots, each
/// requesting arena `i % arenas`, against one gateway socket. With
/// `ramp = Some((up, hold, down))` bot `i` joins staggered over the
/// up window and leaves (with a `Disconnect`) staggered over the down
/// window — the load shape that exercises an elastic gateway. Returns
/// (sent, received, avg latency ms, per-arena received,
/// restarts observed, rehomings observed) — an unsolicited
/// `ConnectAck` arriving while a client is already acked is either a
/// supervised arena restored from checkpoint re-announcing its slots
/// (same arena: a restart) or a live migration's destination claiming
/// the session (different arena: a rehoming).
pub fn run_udp_arena_clients(
    server: SocketAddr,
    arenas: u32,
    players: u32,
    duration: Duration,
    ramp: Option<(Duration, Duration, Duration)>,
) -> std::io::Result<(u64, u64, f64, Vec<u64>, u64, u64)> {
    use parquake_protocol::Encode;

    const RETRY_MIN: Duration = Duration::from_millis(100);
    const RETRY_MAX: Duration = Duration::from_millis(1600);
    const STARVATION: Duration = Duration::from_secs(1);

    let sock = UdpSocket::bind("127.0.0.1:0")?;
    sock.set_read_timeout(Some(Duration::from_millis(5)))?;
    let start = Instant::now();
    let n = players as usize;
    let arenas = arenas.max(1);
    let mut acked = vec![false; n];
    let mut seq = vec![0u32; n];
    let mut last_rx_seq = vec![-1i64; n];
    // The arena each client was actually placed in (from its ack).
    let mut placed: Vec<u16> = (0..n).map(|i| (i as u32 % arenas) as u16).collect();
    let mut next_at = vec![Duration::ZERO; n];
    let mut backoff = vec![RETRY_MIN; n];
    let mut last_heard = vec![Duration::ZERO; n];
    let (join_at, leave_at): (Vec<Duration>, Vec<Duration>) = match ramp {
        Some((up, hold, down)) => (0..n)
            .map(|i| {
                (
                    up * i as u32 / players.max(1),
                    up + hold + down * (i as u32 + 1) / players.max(1),
                )
            })
            .unzip(),
        None => (vec![Duration::ZERO; n], vec![duration; n]),
    };
    let mut left = vec![false; n];
    let mut sent = 0u64;
    let mut received = 0u64;
    let mut restarts_observed = 0u64;
    let mut rehomed_observed = 0u64;
    let mut per_arena = vec![0u64; arenas as usize];
    let mut latency_sum = 0f64;
    let mut buf = [0u8; MAX_DATAGRAM];

    while start.elapsed() < duration {
        let now = start.elapsed();
        let now_ns = now.as_nanos() as u64;
        for i in 0..n {
            if left[i] || now < join_at[i] {
                continue;
            }
            if now >= leave_at[i] {
                left[i] = true;
                if acked[i] {
                    let bye = ClientMessage::Disconnect {
                        client_id: i as u32,
                    };
                    if sock.send_to(&bye.to_bytes(), server).is_ok() {
                        sent += 1;
                    }
                }
                continue;
            }
            if now < next_at[i] {
                continue;
            }
            if acked[i] && now.saturating_sub(last_heard[i]) > STARVATION {
                acked[i] = false;
                backoff[i] = RETRY_MIN;
            }
            let msg = if !acked[i] {
                next_at[i] = now + backoff[i];
                backoff[i] = (backoff[i] * 2).min(RETRY_MAX);
                // Reconnect to the arena the last ack *placed* us in,
                // not the `i % arenas` initial guess: after a crash
                // restore or migration the session is sticky to the
                // learned arena, and asking for the original spread
                // would split it across worlds.
                ClientMessage::Connect {
                    client_id: i as u32,
                    arena: placed[i],
                }
            } else {
                seq[i] += 1;
                next_at[i] = now + Duration::from_millis(30);
                ClientMessage::Move {
                    client_id: i as u32,
                    cmd: parquake_protocol::MoveCmd {
                        seq: seq[i],
                        sent_at: now_ns,
                        pitch: 0.0,
                        yaw: (i as f32 * 37.0) % 360.0 - 180.0,
                        forward: 320.0,
                        side: 0.0,
                        up: 0.0,
                        buttons: parquake_protocol::Buttons::NONE,
                        msec: 30,
                    },
                }
            };
            if sock.send_to(&msg.to_bytes(), server).is_ok() {
                sent += 1;
            }
        }
        while let Ok((len, _)) = sock.recv_from(&mut buf) {
            match ServerMessage::from_bytes(&buf[..len]) {
                Ok(ServerMessage::ConnectAck {
                    client_id, arena, ..
                }) => {
                    let i = client_id as usize;
                    if i < n {
                        if !acked[i] {
                            acked[i] = true;
                            next_at[i] = start.elapsed();
                        } else if !left[i] {
                            // Already connected and not retrying: this
                            // ack is unsolicited — a restored arena
                            // re-announcing the slot after recovery,
                            // or a migration destination claiming the
                            // session from its new world.
                            if placed[i] != arena {
                                rehomed_observed += 1;
                            } else {
                                restarts_observed += 1;
                            }
                        }
                        placed[i] = arena;
                        backoff[i] = RETRY_MIN;
                        last_heard[i] = start.elapsed();
                    }
                }
                Ok(ServerMessage::Reply {
                    client_id,
                    seq: rx_seq,
                    sent_at_echo,
                    ..
                }) => {
                    let i = client_id as usize;
                    if i < n {
                        last_heard[i] = start.elapsed();
                        if rx_seq as i64 > last_rx_seq[i] {
                            last_rx_seq[i] = rx_seq as i64;
                            received += 1;
                            if (placed[i] as usize) < per_arena.len() {
                                per_arena[placed[i] as usize] += 1;
                            }
                            let rx_ns = start.elapsed().as_nanos() as u64;
                            if sent_at_echo > 0 && rx_ns > sent_at_echo {
                                latency_sum += (rx_ns - sent_at_echo) as f64 / 1e6;
                            }
                        }
                    }
                }
                Ok(ServerMessage::Bye { client_id }) => {
                    let i = client_id as usize;
                    if i < n {
                        acked[i] = false;
                        backoff[i] = RETRY_MIN;
                        next_at[i] = start.elapsed();
                    }
                }
                Err(_) => {}
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let avg = if received > 0 {
        latency_sum / received as f64
    } else {
        0.0
    };
    Ok((
        sent,
        received,
        avg,
        per_arena,
        restarts_observed,
        rehomed_observed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced_lane() -> ArenaLane {
        ArenaLane {
            pump_forwarded: 40,
            director_forwarded: 10,
            processed: 44,
            queue_dropped: 4,
            pending_at_shutdown: 2,
            ..ArenaLane::default()
        }
    }

    #[test]
    fn lane_accounting_closes_on_balanced_books() {
        let mut lane = balanced_lane();
        assert!(lane.accounting_closed(), "{lane:?}");
        // One datagram reaches the queue but never gets a fate: open.
        lane.director_forwarded += 1;
        assert!(!lane.accounting_closed(), "{lane:?}");
    }

    #[test]
    fn outbound_notices_evict_and_rebind_placements() {
        use parquake_protocol::Encode;
        use parquake_server::LifecycleEvent;

        let mut book: HashMap<u32, u16> = HashMap::new();
        let ack = |cid: u32, arena: u16| {
            ServerMessage::ConnectAck {
                client_id: cid,
                spawn: parquake_math::Vec3::ZERO,
                arena,
            }
            .to_bytes()
        };

        // ConnectAck installs the placement and is forwarded.
        assert_eq!(apply_outbound(&mut book, &ack(7, 1)), Some(7));
        assert_eq!(book.get(&7), Some(&1));

        // A Reclaimed notice from the placed arena evicts the entry
        // (the pre-fix book kept it and misrouted every later Move to
        // the world that had already dropped the session); notices are
        // never forwarded to the client.
        let reclaim = LifecycleEvent::Reclaimed {
            arena: 1,
            client_id: 7,
            at: 123,
        };
        assert_eq!(apply_outbound(&mut book, &reclaim.to_bytes()), None);
        assert!(!book.contains_key(&7));

        // A *late* notice from an old placement must not kill a newer
        // booking elsewhere.
        assert_eq!(apply_outbound(&mut book, &ack(7, 2)), Some(7));
        let stale = LifecycleEvent::Disconnected {
            arena: 1,
            client_id: 7,
        };
        assert_eq!(apply_outbound(&mut book, &stale.to_bytes()), None);
        assert_eq!(
            book.get(&7),
            Some(&2),
            "late notice evicted a fresh booking"
        );

        // A Migrated notice rebinds to the destination arena.
        let mig = LifecycleEvent::Migrated {
            from_arena: 2,
            to_arena: 0,
            client_id: 7,
            thread: 0,
        };
        assert_eq!(apply_outbound(&mut book, &mig.to_bytes()), None);
        assert_eq!(book.get(&7), Some(&0), "Migrated notice did not rebind");

        // A Connected notice (direct-at-arena join the front door
        // never saw) installs; Bye forwards and evicts.
        let joined = LifecycleEvent::Connected {
            arena: 3,
            client_id: 8,
            thread: 1,
        };
        assert_eq!(apply_outbound(&mut book, &joined.to_bytes()), None);
        assert_eq!(book.get(&8), Some(&3));
        let bye = ServerMessage::Bye { client_id: 8 }.to_bytes();
        assert_eq!(apply_outbound(&mut book, &bye), Some(8));
        assert!(!book.contains_key(&8));

        // Garbage decodes to neither family: ignored, book untouched.
        assert_eq!(apply_outbound(&mut book, &[0xFF, 1, 2, 3]), None);
        assert_eq!(book.len(), 1);
    }

    #[test]
    fn missing_lane_counters_keep_the_report_open() {
        let mut r = UdpArenaReport {
            lanes: vec![balanced_lane()],
            ..UdpArenaReport::default()
        };
        assert!(r.accounting_closed(), "{r:?}");
        // The same balanced books with a lane whose director-side
        // counters were absent must refuse to close: zero-filling the
        // row would fake a closed identity over a drifted fleet view.
        r.lanes_missing_counters.push(0);
        assert!(!r.accounting_closed(), "{r:?}");
    }

    #[test]
    fn report_accounting_closes_every_layer() {
        let mut r = UdpArenaReport {
            datagrams_in: 100,
            decode_rejected: 2,
            spoof_rejected: 1,
            arena_unknown: 3,
            fault_dropped: 4,
            fault_duplicated: 5,
            forwarded: 95, // 90 delivered + 5 duplicates
            to_front: 45,
            front_drained: 40,
            front_queue_dropped: 3,
            front_pending: 2,
            lanes: vec![balanced_lane(), balanced_lane()],
            ..UdpArenaReport::default()
        };
        assert!(r.accounting_closed(), "{r:?}");
        // A single open lane opens the whole report.
        r.lanes[1].processed -= 1;
        assert!(!r.accounting_closed(), "{r:?}");
    }
}
