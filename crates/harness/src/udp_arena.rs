//! Real-network sharded UDP gateway for the multi-arena directory.
//!
//! ```text
//!   UDP 127.0.0.1:port ×N (SO_REUSEPORT) ─(pump-in s)─► Connect ──► front port
//!                                                       Move/Disc ─► arena[k][thread]
//!   gateway fabric port[s] ◄── replies of shard-s-forwarded traffic ─(pump-out s)─► socket s
//! ```
//!
//! The gateway runs `gateway_shards` independent pump pairs. Each shard
//! owns a socket bound to the *same* UDP port via `SO_REUSEPORT` (the
//! kernel spreads client flows across shard sockets by 4-tuple hash), a
//! seeded fault injector (shard 0 keeps the configured seed so a
//! 1-shard gateway replays the exact pre-shard lottery; other shards
//! salt it), and a [`parquake_metrics::GatewayLane`] so no counter is
//! ever shared between pumps. Where batched syscalls are available
//! (see [`crate::mmsg`]), a pump drains datagram bursts with one
//! `recvmmsg`, forwards them into the fabric under one queue lock
//! ([`parquake_fabric::real::RealFabric::send_external_batch`]), and
//! writes reply bursts with one `sendmmsg`; everywhere else the same
//! loops degrade to one-datagram std I/O.
//!
//! The address and placement books are striped
//! ([`StripedBook`]): clients hash to one of `max(4, shards)` stripes,
//! so pumps on different shards almost never contend on one lock, and
//! a book entry learned by one shard (Connect via shard 0, reply out
//! via shard 1) is visible to all.
//!
//! Routing demuxes all arenas over every shard: `Connect`s go through
//! the directory's admission stage, while `Move`/`Disconnect`
//! datagrams are routed by the gateway straight to the client's placed
//! arena **and thread** — the placement is learned from the outbound
//! `ConnectAck{arena}` stream plus the ack's fabric source port (which
//! names the dealt thread), and from the directory's lifecycle notices
//! (which carry the thread explicitly). Routing to the *thread's* port
//! matters on dedicated multi-thread arenas: the old gateway pinned
//! every move to thread 0's port, recreating at the gateway the
//! stray-forward hot spot PR 4 fixed in the director.
//!
//! Accounting closes at every layer and at every width: each shard's
//! [`GatewayLane`] closes on its own, the aggregate of the shard lanes
//! must equal the report's totals, the front door balances, and per
//! arena `pump_forwarded + director_forwarded == processed +
//! queue_dropped + pending_at_shutdown`.

use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use parquake_arena::{spawn_directory, AdmissionPolicy, AdmissionStats, ArenaDirectoryConfig};
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::fault::{FaultConfig, FaultInjector};
use parquake_fabric::real::RealFabric;
use parquake_fabric::{Fabric, Nanos, PortId};
use parquake_metrics::GatewayLane;
use parquake_protocol::{ClientMessage, Decode, ServerMessage, MAX_DATAGRAM};
use parquake_server::{ServerConfig, ServerKind};

use crate::mmsg;
use crate::udp::{admit, pump_wait_plan, AddrEntry, PumpWait, HELD_RETRY_TICK, PUMP_IDLE_TIMEOUT};

/// How long an unroutable reply is retried before being counted as
/// lost; covers the window where a reply races address learning.
const REPLY_RETAIN: Duration = Duration::from_millis(250);

/// Arena-gateway options.
#[derive(Clone, Debug)]
pub struct UdpArenaOpts {
    /// The single UDP port every arena is served on.
    pub port: u16,
    /// Inbound/outbound pump pairs sharing that port (1 = the classic
    /// single-pump gateway, byte-identical fault lottery included).
    pub gateway_shards: u32,
    /// Number of arenas.
    pub arenas: u32,
    /// Shared-pool worker tasks.
    pub workers: u32,
    /// Player capacity per arena.
    pub slots_per_arena: u16,
    pub map: MapGenConfig,
    /// Wall-clock run time.
    pub duration: Duration,
    /// Connect routing policy.
    pub policy: AdmissionPolicy,
    /// Inbound fault injection (drop/duplicate/delay); default none.
    pub fault: FaultConfig,
    /// Server-side inactivity timeout (0 = never reclaim).
    pub client_timeout: Duration,
    /// Elastic ceiling: the directory may grow past `arenas` up to
    /// this many live arenas under admission pressure (0 = fixed
    /// fleet).
    pub max_arenas: u32,
    /// How long an elastic arena's occupancy must stay zero before it
    /// is reaped.
    pub linger: Duration,
    /// Per-frame panic lottery probability; > 0 turns supervision on
    /// (checkpoint/restore + watchdog) and injects crashes.
    pub crash_rate: f32,
    /// Seed for the per-arena frame-fault lottery.
    pub crash_seed: u64,
    /// Live-migration spread threshold: when the hottest live arena
    /// holds at least this many more clients than the coldest open
    /// one, the director migrates one slot per tick (0 = off).
    pub migrate_spread: u32,
    /// Drain-before-reap: migrate the last residents out of a
    /// lingering elastic arena instead of waiting their sessions out.
    pub migrate_drain: bool,
}

impl Default for UdpArenaOpts {
    fn default() -> Self {
        UdpArenaOpts {
            port: 27500,
            gateway_shards: 1,
            arenas: 2,
            workers: 2,
            slots_per_arena: 32,
            map: MapGenConfig::small_arena(1),
            duration: Duration::from_secs(5),
            policy: AdmissionPolicy::Explicit,
            fault: FaultConfig::none(),
            client_timeout: Duration::from_secs(2),
            max_arenas: 0,
            linger: Duration::from_millis(500),
            crash_rate: 0.0,
            crash_seed: 0xC4A5_5EED,
            migrate_spread: 0,
            migrate_drain: false,
        }
    }
}

/// The fault seed shard `shard` runs: shard 0 keeps the configured
/// seed (a 1-shard gateway replays the exact pre-shard lottery);
/// every other shard salts it so shards draw independent sequences.
pub(crate) fn shard_fault_seed(base: u64, shard: usize) -> u64 {
    if shard == 0 {
        base
    } else {
        base ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// One arena's traffic lane through the gateway.
// lockcheck: identity(pump_forwarded + director_forwarded == processed + queue_dropped + pending_at_shutdown)
#[derive(Clone, Debug, Default)]
pub struct ArenaLane {
    /// Datagrams the pumps (all shards) routed straight to this
    /// arena's ports.
    pub pump_forwarded: u64,
    /// Datagrams the director forwarded to this arena's ports.
    pub director_forwarded: u64,
    /// Datagrams the arena drained from its ports.
    pub processed: u64,
    /// Datagrams discarded by the arena ports' bounded-queue policy.
    pub queue_dropped: u64,
    /// Datagrams still queued on the arena ports at shutdown.
    pub pending_at_shutdown: u64,
    /// Replies the arena generated.
    pub replies: u64,
    /// Frames the arena executed.
    pub frames: u64,
    /// Clients the admission policy placed here.
    pub admitted: u64,
}

impl ArenaLane {
    /// Does every datagram that reached this arena's queue have exactly
    /// one fate?
    pub fn accounting_closed(&self) -> bool {
        self.pump_forwarded + self.director_forwarded
            == self.processed + self.queue_dropped + self.pending_at_shutdown
    }
}

/// Summary returned when the arena gateway shuts down.
// lockcheck: identity(datagrams_in == decode_rejected + spoof_rejected + arena_unknown + fault_dropped + delivered, per-shard and per-lane closure)
#[derive(Clone, Debug, Default)]
pub struct UdpArenaReport {
    /// Datagrams read off the shard sockets (all shards).
    pub datagrams_in: u64,
    /// Inbound datagrams that failed protocol decode.
    pub decode_rejected: u64,
    /// Inbound datagrams refused by the address admission policy.
    pub spoof_rejected: u64,
    /// `Move`/`Disconnect` datagrams whose sender has no placed arena
    /// yet (ack in flight) — dropped, counted.
    pub arena_unknown: u64,
    /// Inbound datagrams eaten by the fault-injection stage.
    pub fault_dropped: u64,
    /// Extra copies created by the fault-injection stage.
    pub fault_duplicated: u64,
    /// Datagram copies handed to fabric ports (front door + arenas).
    pub forwarded: u64,
    /// Of `forwarded`, copies sent to the directory's front door.
    pub to_front: u64,
    /// Front-door datagrams the director drained.
    pub front_drained: u64,
    /// Front-door datagrams discarded by its bounded queue.
    pub front_queue_dropped: u64,
    /// Front-door datagrams still queued at shutdown.
    pub front_pending: u64,
    /// Datagrams written to the shard sockets.
    pub datagrams_out: u64,
    /// Replies that never matched a learned client address.
    pub replies_unroutable: u64,
    /// Per-shard gateway lanes (one per pump pair); their aggregate
    /// must reproduce the totals above.
    pub shards: Vec<GatewayLane>,
    /// Per-arena traffic lanes (one per provisioned cell — an elastic
    /// gateway has lanes past the boot fleet).
    pub lanes: Vec<ArenaLane>,
    /// Arena indices whose director-side counters were absent when the
    /// lanes were built — a provisioned cell the admission tables never
    /// heard of means the fleet views drifted, so the report refuses to
    /// close rather than silently zero-filling the lane.
    pub lanes_missing_counters: Vec<u16>,
    /// The director's routing counters.
    pub admission: AdmissionStats,
    /// Elastic spawn/reap accounting (fixed fleet ⇒ no events).
    pub elastic: parquake_metrics::ElasticStats,
    /// Supervision accounting (all-zero when `crash_rate` was 0).
    pub supervisor: parquake_metrics::SupervisorStats,
}

impl UdpArenaReport {
    /// Close the books at every layer and width: each shard's gateway
    /// lane, the aggregate of the shard lanes against the totals, the
    /// front door, and each arena's lane.
    pub fn accounting_closed(&self) -> bool {
        let delivered = self.forwarded - self.fault_duplicated;
        let gateway = self.datagrams_in
            == self.decode_rejected
                + self.spoof_rejected
                + self.arena_unknown
                + self.fault_dropped
                + delivered;
        let front =
            self.to_front == self.front_drained + self.front_queue_dropped + self.front_pending;
        // Per-shard closure, and the shard lanes must *sum* to the
        // totals — a datagram counted on a shard but lost from the
        // aggregate (or vice versa) opens the report. Reports built
        // without shard lanes (unit-test fixtures) skip this layer.
        let shards = self.shards.is_empty() || {
            let agg = GatewayLane::aggregate(&self.shards);
            self.shards.iter().all(|l| l.accounting_closed())
                && agg.datagrams_in == self.datagrams_in
                && agg.decode_rejected == self.decode_rejected
                && agg.spoof_rejected == self.spoof_rejected
                && agg.arena_unknown == self.arena_unknown
                && agg.fault_dropped == self.fault_dropped
                && agg.fault_duplicated == self.fault_duplicated
                && agg.forwarded == self.forwarded
                && agg.to_front == self.to_front
                && agg.datagrams_out == self.datagrams_out
                && agg.replies_unroutable == self.replies_unroutable
        };
        gateway
            && front
            && shards
            && self.lanes_missing_counters.is_empty()
            && self.lanes.iter().all(|l| l.accounting_closed())
    }
}

/// Where the gateway believes a client's session lives: the serving
/// arena and, within it, the dealt server thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GwPlacement {
    pub arena: u16,
    /// The dealt thread *index*; pooled (single-port) arenas clamp it
    /// to 0 at routing time, dedicated multi-thread arenas route moves
    /// to this thread's request port.
    pub thread: u16,
}

/// A placement-book mutation derived from one outbound payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BookOp {
    /// Bind (or rebind) the client's placement.
    Insert(u32, GwPlacement),
    /// The session is over server-side: forget the placement.
    Remove(u32),
    /// Evict only a booking *at that arena* — a late notice from an
    /// old placement must not kill a newer one elsewhere.
    RemoveIfArena(u32, u16),
}

impl BookOp {
    /// The client the op concerns (the striping key).
    pub fn client_id(&self) -> u32 {
        match *self {
            BookOp::Insert(cid, _) | BookOp::Remove(cid) | BookOp::RemoveIfArena(cid, _) => cid,
        }
    }

    /// Apply to a plain placement map (one stripe).
    pub fn apply(&self, book: &mut HashMap<u32, GwPlacement>) {
        match *self {
            BookOp::Insert(cid, p) => {
                book.insert(cid, p);
            }
            BookOp::Remove(cid) => {
                book.remove(&cid);
            }
            BookOp::RemoveIfArena(cid, arena) => {
                if book.get(&cid).map(|p| p.arena) == Some(arena) {
                    book.remove(&cid);
                }
            }
        }
    }
}

/// Classify one outbound fabric payload: does it go on the wire (and
/// to which client), and how does it change the placement book?
///
/// `from_pos` is the payload's fabric source resolved to an
/// `(arena, thread)` position when it came from an arena thread's
/// request port. A `ConnectAck` whose source thread belongs to the
/// ack's own arena teaches the gateway the client's *dealt thread* —
/// the pre-fix book kept only the arena and routed every later move to
/// thread 0's port. Lifecycle notices carry the thread explicitly.
pub fn classify_outbound(
    payload: &[u8],
    from_pos: Option<(u16, u16)>,
) -> (Option<u32>, Option<BookOp>) {
    use parquake_server::LifecycleEvent;
    match ServerMessage::from_bytes(payload) {
        Ok(ServerMessage::ConnectAck {
            client_id, arena, ..
        }) => {
            let thread = match from_pos {
                Some((a, t)) if a == arena => t,
                _ => 0,
            };
            (
                Some(client_id),
                Some(BookOp::Insert(client_id, GwPlacement { arena, thread })),
            )
        }
        Ok(ServerMessage::Bye { client_id }) => (Some(client_id), Some(BookOp::Remove(client_id))),
        Ok(ServerMessage::Reply { client_id, .. }) => (Some(client_id), None),
        Err(_) => {
            let op = match LifecycleEvent::from_bytes(payload) {
                Ok(LifecycleEvent::Connected {
                    arena,
                    client_id,
                    thread,
                }) => Some(BookOp::Insert(client_id, GwPlacement { arena, thread })),
                Ok(LifecycleEvent::Disconnected { arena, client_id })
                | Ok(LifecycleEvent::Reclaimed {
                    arena, client_id, ..
                }) => Some(BookOp::RemoveIfArena(client_id, arena)),
                Ok(LifecycleEvent::Migrated {
                    to_arena,
                    client_id,
                    thread,
                    ..
                }) => Some(BookOp::Insert(
                    client_id,
                    GwPlacement {
                        arena: to_arena,
                        thread,
                    },
                )),
                Ok(LifecycleEvent::Rejected { .. }) | Err(_) => None,
            };
            (None, op)
        }
    }
}

/// Apply one outbound payload to a placement book. Returns
/// `Some(client_id)` when the payload must be forwarded to the client,
/// `None` for lifecycle notices and undecodable payloads.
pub fn apply_outbound(
    book: &mut HashMap<u32, GwPlacement>,
    payload: &[u8],
    from_pos: Option<(u16, u16)>,
) -> Option<u32> {
    let (fwd, op) = classify_outbound(payload, from_pos);
    if let Some(op) = op {
        op.apply(book);
    }
    fwd
}

/// Resolve a placed client's Move/Disconnect destination: the arena
/// cell index and the dealt thread's request port (clamped for pooled
/// single-port arenas). `None` means no routable placement.
pub(crate) fn route_move(
    placement: Option<GwPlacement>,
    arena_ports: &[Vec<PortId>],
) -> Option<(usize, PortId)> {
    let p = placement?;
    let ports = arena_ports.get(p.arena as usize)?;
    let t = (p.thread as usize).min(ports.len().checked_sub(1)?);
    Some((p.arena as usize, ports[t]))
}

/// A client-keyed map split over `max(4, shards)` stripes so gateway
/// pumps on different shards almost never contend on one lock, while
/// every shard still sees every entry (a Connect admitted on shard 0
/// routes the reply leaving through shard 1).
pub(crate) struct StripedBook<T> {
    stripes: Vec<Mutex<HashMap<u32, T>>>,
}

impl<T: Clone> StripedBook<T> {
    pub(crate) fn new(stripes: usize) -> StripedBook<T> {
        let n = stripes.max(4).next_power_of_two();
        StripedBook {
            stripes: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Fibonacci-hash the client id onto a stripe (power-of-two count).
    fn stripe(&self, cid: u32) -> &Mutex<HashMap<u32, T>> {
        let h = (cid.wrapping_mul(0x9E37_79B9) >> 16) as usize;
        &self.stripes[h & (self.stripes.len() - 1)]
    }

    pub(crate) fn get(&self, cid: u32) -> Option<T> {
        self.stripe(cid).lock().unwrap().get(&cid).cloned() // lockcheck: allow(raw-sync: striped gateway book shared with OS-thread pumps outside the fabric)
    }

    /// Run `f` under the client's stripe lock.
    pub(crate) fn with<R>(&self, cid: u32, f: impl FnOnce(&mut HashMap<u32, T>) -> R) -> R {
        f(&mut self.stripe(cid).lock().unwrap()) // lockcheck: allow(raw-sync: striped gateway book shared with OS-thread pumps outside the fabric)
    }
}

impl StripedBook<GwPlacement> {
    /// Apply a book op under its client's stripe lock.
    pub(crate) fn apply(&self, op: &BookOp) {
        self.with(op.client_id(), |m| op.apply(m));
    }
}

/// Outbound-pump counters, merged into the shard's [`GatewayLane`]
/// after the run.
#[derive(Clone, Copy, Default)]
pub(crate) struct OutCounters {
    pub(crate) sent: u64,
    pub(crate) unroutable: u64,
    pub(crate) batched: u64,
}

/// Everything one outbound pump needs.
pub(crate) struct OutboundShard {
    pub(crate) shard: usize,
    /// The gateway fabric port carrying this shard's replies.
    pub(crate) gw: PortId,
    /// This shard's UDP socket (replies leave from the server port).
    pub(crate) sock: UdpSocket,
    pub(crate) addrs: Arc<StripedBook<AddrEntry>>,
    pub(crate) placements: Arc<StripedBook<GwPlacement>>,
    /// Arena thread request port → `(arena, thread)`, for learning the
    /// dealt thread from a `ConnectAck`'s fabric source.
    pub(crate) port_pos: Arc<HashMap<PortId, (u16, u16)>>,
    pub(crate) end_time: Nanos,
    pub(crate) out: Arc<Mutex<Vec<OutCounters>>>,
}

/// Spawn one shard's outbound pump: a fabric task draining the shard's
/// gateway port to its socket. Replies whose client address is not
/// learned yet are retained up to [`REPLY_RETAIN`] and retried both on
/// new gateway traffic and on a bounded retry tick
/// ([`HELD_RETRY_TICK`]) — without the tick, a book entry arriving on
/// a quiet port left the reply sitting the whole retention window.
pub(crate) fn spawn_outbound_pump(fabric: &Arc<dyn Fabric>, p: OutboundShard) {
    let OutboundShard {
        shard,
        gw,
        sock,
        addrs,
        placements,
        port_pos,
        end_time,
        out,
    } = p;
    fabric.spawn(
        &format!("udp-arena-out{shard}"),
        None,
        Box::new(move |ctx| {
            let mut sent = 0u64;
            let mut unroutable = 0u64;
            let mut batched = 0u64;
            let mut held: Vec<(Instant, u32, Vec<u8>)> = Vec::new();
            loop {
                let deadline = if held.is_empty() {
                    end_time
                } else {
                    (ctx.now() + HELD_RETRY_TICK).min(end_time)
                };
                let readable = ctx.wait_readable(gw, Some(deadline));
                let now = Instant::now();
                // Everything sendable this wakeup goes out in one
                // batched write at the end.
                let mut outbox: Vec<(Vec<u8>, SocketAddr)> = Vec::new();
                held.retain(|(since, cid, payload)| {
                    if let Some(e) = addrs.get(*cid) {
                        outbox.push((payload.clone(), e.addr));
                        false
                    } else if now.duration_since(*since) >= REPLY_RETAIN {
                        unroutable += 1;
                        false
                    } else {
                        true
                    }
                });
                let expired = !readable && ctx.now() >= end_time;
                if readable {
                    while let Some(msg) = ctx.try_recv(gw) {
                        let from_pos = port_pos.get(&msg.from).copied();
                        let (fwd, op) = classify_outbound(&msg.payload, from_pos);
                        if let Some(op) = op {
                            placements.apply(&op);
                        }
                        let Some(cid) = fwd else { continue };
                        match addrs.get(cid) {
                            Some(e) => outbox.push((msg.payload, e.addr)),
                            None => held.push((Instant::now(), cid, msg.payload)),
                        }
                    }
                }
                let (s, b) = mmsg::send_batch(&sock, &outbox);
                sent += s;
                batched += b;
                if expired {
                    break;
                }
            }
            unroutable += held.len() as u64;
            let mut c = out.lock().unwrap(); // lockcheck: allow(raw-sync: OS-thread UDP bridge counters, aggregated after join)
            c[shard].sent += sent;
            c[shard].unroutable += unroutable;
            c[shard].batched += batched;
        }),
    );
}

/// Bind the shard sockets for one gateway port. Returns the sockets
/// and whether `SO_REUSEPORT` carried them (`false` at one shard, and
/// on the portable fallback where all pumps share one socket via
/// `try_clone` and the kernel wakes one blocked reader per datagram).
fn bind_shard_sockets(port: u16, shards: usize) -> std::io::Result<(Vec<UdpSocket>, bool)> {
    if shards > 1 && mmsg::capability().reuseport {
        // All sockets on the port must carry the flag (a plain bind
        // blocks later reuseport binds), so the first one is bound
        // through the raw path too.
        let bound = (|| {
            let first = mmsg::bind_reuseport(Ipv4Addr::LOCALHOST, port).ok()?;
            let bound_port = first.local_addr().ok()?.port();
            let mut socks = vec![first];
            for _ in 1..shards {
                socks.push(mmsg::bind_reuseport(Ipv4Addr::LOCALHOST, bound_port).ok()?);
            }
            Some(socks)
        })();
        if let Some(socks) = bound {
            return Ok((socks, true));
        }
        // A partial failure dropped every socket above; fall through to
        // the shared-socket fallback on a fresh plain bind.
    }
    let first = UdpSocket::bind(("127.0.0.1", port))?;
    let mut socks = Vec::with_capacity(shards);
    for _ in 1..shards {
        socks.push(first.try_clone()?);
    }
    socks.insert(0, first);
    Ok((socks, false))
}

/// Run the arena directory behind `gateway_shards` pump pairs on one
/// real UDP port until `opts.duration` elapses. Returns the layered
/// traffic report.
pub fn run_udp_arena_server(opts: &UdpArenaOpts) -> std::io::Result<UdpArenaReport> {
    let shards = opts.gateway_shards.max(1) as usize;
    let (real, fabric) = RealFabric::new_arc_pair();
    let end_time: Nanos = opts.duration.as_nanos() as Nanos;
    // One gateway fabric port per shard carries that shard's replies
    // out; the directory's lifecycle tap (slot-churn notices) rides on
    // shard 0, and the shared placement book makes what it learns
    // visible to every shard.
    let gw_ports: Vec<PortId> = (0..shards).map(|_| fabric.alloc_port()).collect();
    let mut server = ServerConfig::new(ServerKind::Sequential, end_time);
    server.client_timeout_ns = opts.client_timeout.as_nanos() as Nanos;
    let dir_cfg = ArenaDirectoryConfig {
        policy: opts.policy,
        scheduling: parquake_arena::ArenaScheduling::Pooled {
            workers: opts.workers,
        },
        map: opts.map.clone(),
        max_arenas: opts.max_arenas,
        linger_ns: opts.linger.as_nanos() as Nanos,
        supervision: opts.crash_rate > 0.0,
        frame_faults: (opts.crash_rate > 0.0).then(|| FaultConfig {
            panic_per_frame: opts.crash_rate,
            seed: opts.crash_seed,
            ..FaultConfig::none()
        }),
        migrate_spread: opts.migrate_spread,
        migrate_drain: opts.migrate_drain,
        lifecycle_tap: Some(gw_ports[0]),
        ..ArenaDirectoryConfig::new(opts.arenas, opts.slots_per_arena, server)
    };
    let handle = spawn_directory(&fabric, dir_cfg);
    // Every provisioned cell, including elastic headroom past the boot
    // fleet — the pumps route to (and the report covers) all of them.
    let cells = handle.arena_ports.len();
    let arena_ports: Arc<Vec<Vec<PortId>>> = Arc::new(handle.arena_ports.clone());
    let port_pos: Arc<HashMap<PortId, (u16, u16)>> = Arc::new(
        arena_ports
            .iter()
            .enumerate()
            .flat_map(|(k, ports)| {
                ports
                    .iter()
                    .enumerate()
                    .map(move |(t, &p)| (p, (k as u16, t as u16)))
            })
            .collect(),
    );

    let (socks, _reuseport) = bind_shard_sockets(opts.port, shards)?;
    for sock in &socks {
        sock.set_read_timeout(Some(PUMP_IDLE_TIMEOUT))?;
    }

    let addrs: Arc<StripedBook<AddrEntry>> = Arc::new(StripedBook::new(shards));
    let placements: Arc<StripedBook<GwPlacement>> = Arc::new(StripedBook::new(shards));
    let rebind_grace = if opts.client_timeout.is_zero() {
        Duration::from_secs(1)
    } else {
        opts.client_timeout / 2
    };

    // Outbound pumps: one fabric task per shard.
    let out_counters: Arc<Mutex<Vec<OutCounters>>> =
        Arc::new(Mutex::new(vec![OutCounters::default(); shards]));
    for (shard, gw) in gw_ports.iter().enumerate() {
        spawn_outbound_pump(
            &fabric,
            OutboundShard {
                shard,
                gw: *gw,
                sock: socks[shard].try_clone()?,
                addrs: addrs.clone(),
                placements: placements.clone(),
                port_pos: port_pos.clone(),
                end_time,
                out: out_counters.clone(),
            },
        );
    }

    // Inbound pumps: one OS thread per shard demuxing its socket to
    // all arenas. Each owns its lane and fault injector outright.
    let deadline = Instant::now() + opts.duration;
    let front = handle.front_port;
    let pumps: Vec<std::thread::JoinHandle<(GatewayLane, Vec<u64>)>> = (0..shards)
        .map(|shard| {
            let sock = socks[shard]
                .try_clone()
                .expect("shard socket clone for inbound pump");
            let real = real.clone();
            let gw = gw_ports[shard];
            let addrs = addrs.clone();
            let placements = placements.clone();
            let arena_ports = arena_ports.clone();
            let injector = FaultInjector::new(FaultConfig {
                seed: shard_fault_seed(opts.fault.seed, shard),
                ..opts.fault.clone()
            });
            std::thread::spawn(move || {
                let mut buf = [0u8; MAX_DATAGRAM];
                let mut lane = GatewayLane::new(shard);
                let mut to_arena = vec![0u64; cells];
                // Delayed copies waiting to come due:
                // (due, cell, port, payload); cell usize::MAX = front.
                let mut held: Vec<(Instant, usize, PortId, Vec<u8>)> = Vec::new();
                // Fabric deliveries staged this wakeup, flushed in
                // per-port batches under one queue lock each.
                let mut outbox: Vec<(PortId, Vec<u8>)> = Vec::new();
                let mut cur_timeout = PUMP_IDLE_TIMEOUT;
                let mut nonblocking = false;

                fn stage(
                    lane: &mut GatewayLane,
                    to_arena: &mut [u64],
                    outbox: &mut Vec<(PortId, Vec<u8>)>,
                    cell: usize,
                    port: PortId,
                    payload: Vec<u8>,
                ) {
                    lane.forwarded += 1;
                    if cell == usize::MAX {
                        lane.to_front += 1;
                    } else {
                        to_arena[cell] += 1;
                    }
                    outbox.push((port, payload));
                }

                fn flush(real: &RealFabric, gw: PortId, outbox: &mut Vec<(PortId, Vec<u8>)>) {
                    while !outbox.is_empty() {
                        let port = outbox[0].0;
                        let mut batch = Vec::new();
                        let mut rest = Vec::new();
                        for (p, payload) in outbox.drain(..) {
                            if p == port {
                                batch.push(payload);
                            } else {
                                rest.push((p, payload));
                            }
                        }
                        *outbox = rest;
                        real.send_external_batch(gw, port, batch);
                    }
                }

                let process = |lane: &mut GatewayLane,
                               to_arena: &mut Vec<u64>,
                               held: &mut Vec<(Instant, usize, PortId, Vec<u8>)>,
                               outbox: &mut Vec<(PortId, Vec<u8>)>,
                               payload: &[u8],
                               from: SocketAddr,
                               now: Instant| {
                    lane.datagrams_in += 1;
                    let Ok(msg) = ClientMessage::from_bytes(payload) else {
                        lane.decode_rejected += 1;
                        return;
                    };
                    let cid = match &msg {
                        ClientMessage::Connect { client_id, .. }
                        | ClientMessage::Move { client_id, .. }
                        | ClientMessage::Disconnect { client_id } => *client_id,
                    };
                    let admitted =
                        addrs.with(cid, |book| admit(book, &msg, from, now, rebind_grace));
                    if !admitted {
                        lane.spoof_rejected += 1;
                        return;
                    }
                    // Route: Connects go through admission (the
                    // director picks the arena); moves/disconnects go
                    // straight to the placed arena's dealt thread.
                    let (cell, port) = match &msg {
                        ClientMessage::Connect { .. } => (usize::MAX, front),
                        ClientMessage::Move { client_id, .. }
                        | ClientMessage::Disconnect { client_id } => {
                            match route_move(placements.get(*client_id), &arena_ports) {
                                Some(dest) => dest,
                                None => {
                                    lane.arena_unknown += 1;
                                    return;
                                }
                            }
                        }
                    };
                    let fates = injector.draw();
                    if fates.is_empty() {
                        lane.fault_dropped += 1;
                        return;
                    }
                    lane.fault_duplicated += fates.len() as u64 - 1;
                    for extra in fates {
                        if extra == 0 {
                            stage(lane, to_arena, outbox, cell, port, payload.to_vec());
                        } else {
                            held.push((
                                now + Duration::from_nanos(extra),
                                cell,
                                port,
                                payload.to_vec(),
                            ));
                        }
                    }
                };

                loop {
                    let now = Instant::now();
                    let mut i = 0;
                    while i < held.len() {
                        if held[i].0 <= now {
                            let (_, cell, port, payload) = held.swap_remove(i);
                            stage(&mut lane, &mut to_arena, &mut outbox, cell, port, payload);
                        } else {
                            i += 1;
                        }
                    }
                    flush(&real, gw, &mut outbox);
                    if now >= deadline {
                        break;
                    }
                    // Wait so the earliest held due time is hit on the
                    // dot (block far out, poll the final stretch)
                    // instead of up to the idle timeout late.
                    let res = match pump_wait_plan(held.iter().map(|h| h.0).min(), now) {
                        PumpWait::Block(want) => {
                            if nonblocking {
                                let _ = sock.set_nonblocking(false);
                                nonblocking = false;
                            }
                            if want != cur_timeout {
                                let _ = sock.set_read_timeout(Some(want));
                                cur_timeout = want;
                            }
                            sock.recv_from(&mut buf)
                        }
                        PumpWait::PollSleep(nap) => {
                            if !nonblocking {
                                let _ = sock.set_nonblocking(true);
                                nonblocking = true;
                            }
                            let r = sock.recv_from(&mut buf);
                            if r.is_err() && !nap.is_zero() {
                                std::thread::sleep(nap);
                            }
                            r
                        }
                    };
                    match res {
                        Ok((n, from)) => {
                            let (payload, rest) = buf.split_at_mut(n);
                            let _ = rest;
                            process(
                                &mut lane,
                                &mut to_arena,
                                &mut held,
                                &mut outbox,
                                payload,
                                from,
                                now,
                            );
                            // Drain the rest of a burst in one batched
                            // syscall (no-op without mmsg capability).
                            for (extra, from2) in mmsg::recv_more(&sock, mmsg::BATCH - 1) {
                                lane.batched_recvs += 1;
                                process(
                                    &mut lane,
                                    &mut to_arena,
                                    &mut held,
                                    &mut outbox,
                                    &extra,
                                    from2,
                                    now,
                                );
                            }
                        }
                        Err(ref e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue;
                        }
                        Err(_) => break,
                    }
                }
                // Late delivery is legal UDP: flush held copies so the
                // accounting identity closes exactly.
                for (_, cell, port, payload) in std::mem::take(&mut held) {
                    stage(&mut lane, &mut to_arena, &mut outbox, cell, port, payload);
                }
                flush(&real, gw, &mut outbox);
                (lane, to_arena)
            })
        })
        .collect();

    fabric.run();
    let mut shard_lanes: Vec<GatewayLane> = Vec::with_capacity(shards);
    let mut pump_to_arena = vec![0u64; cells];
    for pump in pumps {
        let (lane, to_arena) = pump.join().expect("inbound pump panicked");
        for (k, v) in to_arena.iter().enumerate() {
            pump_to_arena[k] += v;
        }
        shard_lanes.push(lane);
    }
    {
        let outs = out_counters.lock().unwrap(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
        for lane in shard_lanes.iter_mut() {
            let oc = outs[lane.shard];
            lane.datagrams_out = oc.sent;
            lane.replies_unroutable = oc.unroutable;
            lane.batched_sends = oc.batched;
        }
    }
    let agg = GatewayLane::aggregate(&shard_lanes);

    let admission = handle.admission.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
    let elastic = handle.elastic.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
    let supervisor = handle.supervisor.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
    let mut lanes = Vec::with_capacity(cells);
    let mut lanes_missing_counters: Vec<u16> = Vec::new();
    for (k, &pump_forwarded) in pump_to_arena.iter().enumerate() {
        let r = handle.results[k].lock().unwrap(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
        let m = r.merged();
        // A provisioned cell absent from the director's tables is a
        // drifted fleet view, not quiet traffic: record it so the
        // report refuses to close, instead of zero-filling silently.
        let director_forwarded = match admission.forwarded_per_arena.get(k) {
            Some(&v) => v,
            None => {
                lanes_missing_counters.push(k as u16);
                0
            }
        };
        let admitted = match admission.per_arena.get(k) {
            Some(&v) => v,
            None => {
                if lanes_missing_counters.last() != Some(&(k as u16)) {
                    lanes_missing_counters.push(k as u16);
                }
                0
            }
        };
        let (queue_dropped, pending_at_shutdown) =
            handle.arena_ports[k]
                .iter()
                .fold((0u64, 0u64), |(d, p), &port| {
                    (
                        d + fabric.port_dropped(port),
                        p + fabric.port_pending(port) as u64,
                    )
                });
        lanes.push(ArenaLane {
            pump_forwarded,
            director_forwarded,
            processed: m.datagrams,
            queue_dropped,
            pending_at_shutdown,
            replies: m.replies,
            frames: r.frame_count,
            admitted,
        });
    }
    Ok(UdpArenaReport {
        datagrams_in: agg.datagrams_in,
        decode_rejected: agg.decode_rejected,
        spoof_rejected: agg.spoof_rejected,
        arena_unknown: agg.arena_unknown,
        fault_dropped: agg.fault_dropped,
        fault_duplicated: agg.fault_duplicated,
        forwarded: agg.forwarded,
        to_front: agg.to_front,
        front_drained: admission.drained(),
        front_queue_dropped: fabric.port_dropped(handle.front_port),
        front_pending: fabric.port_pending(handle.front_port) as u64,
        datagrams_out: agg.datagrams_out,
        replies_unroutable: agg.replies_unroutable,
        shards: shard_lanes,
        lanes,
        lanes_missing_counters,
        admission,
        elastic,
        supervisor,
    })
}

/// A minimal real-UDP multi-arena client: drives `players` bots, each
/// requesting arena `i % arenas`, against one gateway port. With
/// `ramp = Some((up, hold, down))` bot `i` joins staggered over the
/// up window and leaves (with a `Disconnect`) staggered over the down
/// window — the load shape that exercises an elastic gateway. Returns
/// (sent, received, avg latency ms, per-arena received,
/// restarts observed, rehomings observed) — an unsolicited
/// `ConnectAck` arriving while a client is already acked is either a
/// supervised arena restored from checkpoint re-announcing its slots
/// (same arena: a restart) or a live migration's destination claiming
/// the session (different arena: a rehoming).
pub fn run_udp_arena_clients(
    server: SocketAddr,
    arenas: u32,
    players: u32,
    duration: Duration,
    ramp: Option<(Duration, Duration, Duration)>,
) -> std::io::Result<(u64, u64, f64, Vec<u64>, u64, u64)> {
    run_udp_arena_clients_sharded(server, arenas, players, duration, ramp, 1)
}

/// As [`run_udp_arena_clients`], but spread the bots over `sockets`
/// client sockets (bot `i` lives on socket `i % sockets`). A sharded
/// `SO_REUSEPORT` gateway balances *flows*, not datagrams: one client
/// socket is one 4-tuple and lands entirely on one shard, so driving a
/// multi-shard gateway needs at least as many client sockets as server
/// shards.
pub fn run_udp_arena_clients_sharded(
    server: SocketAddr,
    arenas: u32,
    players: u32,
    duration: Duration,
    ramp: Option<(Duration, Duration, Duration)>,
    sockets: u32,
) -> std::io::Result<(u64, u64, f64, Vec<u64>, u64, u64)> {
    let out =
        run_udp_arena_clients_predicting(server, arenas, players, duration, ramp, sockets, None)?;
    Ok((
        out.sent,
        out.received,
        out.avg_ms,
        out.per_arena,
        out.restarts_observed,
        out.rehomed_observed,
    ))
}

/// What [`run_udp_arena_clients_predicting`] measured.
#[derive(Debug, Clone)]
pub struct ArenaClientOutcome {
    pub sent: u64,
    pub received: u64,
    pub avg_ms: f64,
    /// Replies counted per arena the client was placed in.
    pub per_arena: Vec<u64>,
    /// Unsolicited re-acks from the placed arena (supervised restarts).
    pub restarts_observed: u64,
    /// Unsolicited acks from a *different* arena (live migrations).
    pub rehomed_observed: u64,
    /// Client-side prediction accounting (all zero without a map).
    pub prediction: parquake_metrics::PredictionStats,
    /// Ring entries still unacked when the run ended.
    pub predict_in_flight: u64,
}

/// As [`run_udp_arena_clients_sharded`], with optional client-side
/// prediction against a compiled map that must be bit-identical to the
/// arenas' (both sides default to the `UdpServerOpts` generator).
#[allow(clippy::too_many_arguments)]
pub fn run_udp_arena_clients_predicting(
    server: SocketAddr,
    arenas: u32,
    players: u32,
    duration: Duration,
    ramp: Option<(Duration, Duration, Duration)>,
    sockets: u32,
    predict: Option<Arc<parquake_bsp::BspWorld>>,
) -> std::io::Result<ArenaClientOutcome> {
    use parquake_protocol::Encode;

    const RETRY_MIN: Duration = Duration::from_millis(100);
    const RETRY_MAX: Duration = Duration::from_millis(1600);
    const STARVATION: Duration = Duration::from_secs(1);

    let m = sockets.max(1) as usize;
    let socks: Vec<UdpSocket> = (0..m)
        .map(|_| UdpSocket::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    if m == 1 {
        // Single socket: the blocking drain below doubles as pacing.
        socks[0].set_read_timeout(Some(Duration::from_millis(5)))?;
    } else {
        // Multi-socket: poll all sockets nonblocking; the loop's sleep
        // paces the scan.
        for s in &socks {
            s.set_nonblocking(true)?;
        }
    }
    let start = Instant::now();
    let n = players as usize;
    let arenas = arenas.max(1);
    let mut acked = vec![false; n];
    let mut seq = vec![0u32; n];
    let mut last_rx_seq = vec![-1i64; n];
    // The arena each client was actually placed in (from its ack).
    let mut placed: Vec<u16> = (0..n).map(|i| (i as u32 % arenas) as u16).collect();
    let mut next_at = vec![Duration::ZERO; n];
    let mut backoff = vec![RETRY_MIN; n];
    let mut last_heard = vec![Duration::ZERO; n];
    let (join_at, leave_at): (Vec<Duration>, Vec<Duration>) = match ramp {
        Some((up, hold, down)) => (0..n)
            .map(|i| {
                (
                    up * i as u32 / players.max(1),
                    up + hold + down * (i as u32 + 1) / players.max(1),
                )
            })
            .unzip(),
        None => (vec![Duration::ZERO; n], vec![duration; n]),
    };
    let mut left = vec![false; n];
    let mut predictors: Vec<Option<parquake_bots::Predictor>> = (0..n)
        .map(|_| {
            predict
                .as_ref()
                .map(|m| parquake_bots::Predictor::new(m.clone(), parquake_math::Vec3::ZERO))
        })
        .collect();
    let mut sent = 0u64;
    let mut received = 0u64;
    let mut restarts_observed = 0u64;
    let mut rehomed_observed = 0u64;
    let mut per_arena = vec![0u64; arenas as usize];
    let mut latency_sum = 0f64;
    let mut buf = [0u8; MAX_DATAGRAM];

    while start.elapsed() < duration {
        let now = start.elapsed();
        let now_ns = now.as_nanos() as u64;
        for i in 0..n {
            if left[i] || now < join_at[i] {
                continue;
            }
            if now >= leave_at[i] {
                left[i] = true;
                if acked[i] {
                    let bye = ClientMessage::Disconnect {
                        client_id: i as u32,
                    };
                    if socks[i % m].send_to(&bye.to_bytes(), server).is_ok() {
                        sent += 1;
                    }
                }
                continue;
            }
            if now < next_at[i] {
                continue;
            }
            if acked[i] && now.saturating_sub(last_heard[i]) > STARVATION {
                acked[i] = false;
                backoff[i] = RETRY_MIN;
            }
            let msg = if !acked[i] {
                next_at[i] = now + backoff[i];
                backoff[i] = (backoff[i] * 2).min(RETRY_MAX);
                // Reconnect to the arena the last ack *placed* us in,
                // not the `i % arenas` initial guess: after a crash
                // restore or migration the session is sticky to the
                // learned arena, and asking for the original spread
                // would split it across worlds.
                ClientMessage::Connect {
                    client_id: i as u32,
                    arena: placed[i],
                }
            } else {
                seq[i] += 1;
                next_at[i] = now + Duration::from_millis(30);
                let mut cmd = parquake_protocol::MoveCmd {
                    seq: seq[i],
                    sent_at: now_ns,
                    pitch: 0.0,
                    yaw: (i as f32 * 37.0) % 360.0 - 180.0,
                    forward: 320.0,
                    side: 0.0,
                    up: 0.0,
                    buttons: parquake_protocol::Buttons::NONE,
                    msec: 30,
                    predict_ack: None,
                };
                if let Some(p) = predictors[i].as_mut() {
                    cmd.predict_ack = Some(p.trailer_ack());
                    p.predict(&cmd);
                }
                ClientMessage::Move {
                    client_id: i as u32,
                    cmd,
                }
            };
            if socks[i % m].send_to(&msg.to_bytes(), server).is_ok() {
                sent += 1;
            }
        }
        let mut handle_reply = |buf: &[u8]| {
            match ServerMessage::from_bytes(buf) {
                Ok(ServerMessage::ConnectAck {
                    client_id,
                    arena,
                    spawn,
                }) => {
                    let i = client_id as usize;
                    if i < n {
                        if !acked[i] {
                            acked[i] = true;
                            next_at[i] = start.elapsed();
                            // A fresh ack opens a new server-side
                            // session whose reply sequence restarts
                            // low (slot reclaim, supervised restart).
                            // The duplicate-suppression window must
                            // restart with it, or every reply of the
                            // new session is swallowed as a stale
                            // duplicate and the session starves again.
                            last_rx_seq[i] = -1;
                            if let Some(p) = predictors[i].as_mut() {
                                p.reset(spawn);
                            }
                        } else if !left[i] {
                            // Already connected and not retrying: this
                            // ack is unsolicited — a restored arena
                            // re-announcing the slot after recovery,
                            // or a migration destination claiming the
                            // session from its new world.
                            if placed[i] != arena {
                                rehomed_observed += 1;
                            } else {
                                restarts_observed += 1;
                            }
                        }
                        placed[i] = arena;
                        backoff[i] = RETRY_MIN;
                        last_heard[i] = start.elapsed();
                    }
                }
                Ok(ServerMessage::Reply {
                    client_id,
                    seq: rx_seq,
                    sent_at_echo,
                    origin,
                    predict: reply_predict,
                    ..
                }) => {
                    let i = client_id as usize;
                    if i < n {
                        last_heard[i] = start.elapsed();
                        if rx_seq as i64 > last_rx_seq[i] {
                            last_rx_seq[i] = rx_seq as i64;
                            received += 1;
                            if (placed[i] as usize) < per_arena.len() {
                                per_arena[placed[i] as usize] += 1;
                            }
                            let rx_ns = start.elapsed().as_nanos() as u64;
                            if sent_at_echo > 0 && rx_ns > sent_at_echo {
                                latency_sum += (rx_ns - sent_at_echo) as f64 / 1e6;
                            }
                            if let (Some(p), Some(rp)) =
                                (predictors[i].as_mut(), reply_predict.as_ref())
                            {
                                p.reconcile(origin, rp);
                            }
                        }
                    }
                }
                Ok(ServerMessage::Bye { client_id }) => {
                    let i = client_id as usize;
                    if i < n {
                        acked[i] = false;
                        backoff[i] = RETRY_MIN;
                        next_at[i] = start.elapsed();
                    }
                }
                Err(_) => {}
            }
        };
        for s in &socks {
            while let Ok((len, _)) = s.recv_from(&mut buf) {
                handle_reply(&buf[..len]);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let avg = if received > 0 {
        latency_sum / received as f64
    } else {
        0.0
    };
    let mut prediction = parquake_metrics::PredictionStats::new();
    let mut predict_in_flight = 0u64;
    for p in predictors.iter().flatten() {
        prediction.merge(&p.stats);
        predict_in_flight += p.in_flight();
    }
    Ok(ArenaClientOutcome {
        sent,
        received,
        avg_ms: avg,
        per_arena,
        restarts_observed,
        rehomed_observed,
        prediction,
        predict_in_flight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_protocol::Encode;
    use parquake_server::LifecycleEvent;
    use proptest::prelude::*;

    fn balanced_lane() -> ArenaLane {
        ArenaLane {
            pump_forwarded: 40,
            director_forwarded: 10,
            processed: 44,
            queue_dropped: 4,
            pending_at_shutdown: 2,
            ..ArenaLane::default()
        }
    }

    fn ack(cid: u32, arena: u16) -> Vec<u8> {
        ServerMessage::ConnectAck {
            client_id: cid,
            spawn: parquake_math::Vec3::ZERO,
            arena,
        }
        .to_bytes()
    }

    #[test]
    fn lane_accounting_closes_on_balanced_books() {
        let mut lane = balanced_lane();
        assert!(lane.accounting_closed(), "{lane:?}");
        // One datagram reaches the queue but never gets a fate: open.
        lane.director_forwarded += 1;
        assert!(!lane.accounting_closed(), "{lane:?}");
    }

    #[test]
    fn outbound_notices_evict_and_rebind_placements() {
        let mut book: HashMap<u32, GwPlacement> = HashMap::new();

        // ConnectAck installs the placement and is forwarded.
        assert_eq!(apply_outbound(&mut book, &ack(7, 1), None), Some(7));
        assert_eq!(book[&7].arena, 1);

        // A Reclaimed notice from the placed arena evicts the entry
        // (the pre-fix book kept it and misrouted every later Move to
        // the world that had already dropped the session); notices are
        // never forwarded to the client.
        let reclaim = LifecycleEvent::Reclaimed {
            arena: 1,
            client_id: 7,
            at: 123,
        };
        assert_eq!(apply_outbound(&mut book, &reclaim.to_bytes(), None), None);
        assert!(!book.contains_key(&7));

        // A *late* notice from an old placement must not kill a newer
        // booking elsewhere.
        assert_eq!(apply_outbound(&mut book, &ack(7, 2), None), Some(7));
        let stale = LifecycleEvent::Disconnected {
            arena: 1,
            client_id: 7,
        };
        assert_eq!(apply_outbound(&mut book, &stale.to_bytes(), None), None);
        assert_eq!(
            book.get(&7).map(|p| p.arena),
            Some(2),
            "late notice evicted a fresh booking"
        );

        // A Migrated notice rebinds to the destination arena AND the
        // thread the destination dealt.
        let mig = LifecycleEvent::Migrated {
            from_arena: 2,
            to_arena: 0,
            client_id: 7,
            thread: 1,
        };
        assert_eq!(apply_outbound(&mut book, &mig.to_bytes(), None), None);
        assert_eq!(
            book.get(&7),
            Some(&GwPlacement {
                arena: 0,
                thread: 1
            }),
            "Migrated notice did not rebind"
        );

        // A Connected notice (direct-at-arena join the front door
        // never saw) installs arena and thread; Bye forwards and
        // evicts.
        let joined = LifecycleEvent::Connected {
            arena: 3,
            client_id: 8,
            thread: 1,
        };
        assert_eq!(apply_outbound(&mut book, &joined.to_bytes(), None), None);
        assert_eq!(
            book.get(&8),
            Some(&GwPlacement {
                arena: 3,
                thread: 1
            })
        );
        let bye = ServerMessage::Bye { client_id: 8 }.to_bytes();
        assert_eq!(apply_outbound(&mut book, &bye, None), Some(8));
        assert!(!book.contains_key(&8));

        // Garbage decodes to neither family: ignored, book untouched.
        assert_eq!(apply_outbound(&mut book, &[0xFF, 1, 2, 3], None), None);
        assert_eq!(book.len(), 1);
    }

    /// Satellite regression (stale-thread routing): a dedicated
    /// 2-thread arena must receive a placed client's moves on the
    /// *dealt* thread's port. The pre-fix pump routed every move to
    /// `arena_ports[k][0]`.
    #[test]
    fn moves_route_to_the_dealt_threads_port() {
        // Synthetic 2-arena × 2-thread port table.
        let ports: Vec<Vec<PortId>> = vec![vec![10, 11], vec![20, 21]];
        let mut book: HashMap<u32, GwPlacement> = HashMap::new();

        // The ack for client 7 leaves arena 1 from thread 1's request
        // port: the gateway must learn (arena 1, thread 1)…
        assert_eq!(apply_outbound(&mut book, &ack(7, 1), Some((1, 1))), Some(7));
        assert_eq!(
            book[&7],
            GwPlacement {
                arena: 1,
                thread: 1
            }
        );
        // …and route later moves to thread 1's port (pre-fix: 20).
        assert_eq!(route_move(book.get(&7).copied(), &ports), Some((1, 21)));

        // An ack whose fabric source is NOT one of the named arena's
        // ports (a re-ack relayed oddly) falls back to thread 0 rather
        // than trusting a foreign thread index.
        assert_eq!(apply_outbound(&mut book, &ack(8, 1), Some((0, 1))), Some(8));
        assert_eq!(route_move(book.get(&8).copied(), &ports), Some((1, 20)));

        // Pooled arenas have one port: any learned thread clamps to it.
        let pooled: Vec<Vec<PortId>> = vec![vec![10], vec![20]];
        assert_eq!(route_move(book.get(&7).copied(), &pooled), Some((1, 20)));

        // A placement naming a missing arena is unroutable, not a
        // panic (elastic reap raced the move).
        assert_eq!(
            route_move(
                Some(GwPlacement {
                    arena: 9,
                    thread: 0
                }),
                &ports
            ),
            None
        );
        assert_eq!(route_move(None, &ports), None);
    }

    /// Satellite regression, live half: spin a dedicated directory
    /// whose single arena runs a 2-thread parallel runtime, connect
    /// two clients through the front door, and check the gateway's
    /// book learns two *different* dealt threads from the ack stream —
    /// and that moves would route to each thread's own port.
    #[test]
    fn dedicated_two_thread_arena_deals_moves_across_thread_ports() {
        use parquake_server::LockPolicy;

        let (_real, fabric) = RealFabric::new_arc_pair();
        let end_time: Nanos = 400_000_000; // 400ms
        let gw = fabric.alloc_port();
        let server = ServerConfig::new(
            ServerKind::Parallel {
                threads: 2,
                locking: LockPolicy::Optimized,
            },
            end_time,
        );
        let dir_cfg = ArenaDirectoryConfig {
            scheduling: parquake_arena::ArenaScheduling::Dedicated,
            lifecycle_tap: Some(gw),
            ..ArenaDirectoryConfig::new(1, 8, server)
        };
        let handle = spawn_directory(&fabric, dir_cfg);
        assert_eq!(
            handle.arena_ports[0].len(),
            2,
            "dedicated parallel arena should expose one port per thread"
        );
        let arena_ports = handle.arena_ports.clone();
        let port_pos: HashMap<PortId, (u16, u16)> = arena_ports
            .iter()
            .enumerate()
            .flat_map(|(k, ports)| {
                ports
                    .iter()
                    .enumerate()
                    .map(move |(t, &p)| (p, (k as u16, t as u16)))
            })
            .collect();
        let front = handle.front_port;

        let learned: Arc<Mutex<HashMap<u32, GwPlacement>>> = Arc::new(Mutex::new(HashMap::new()));
        let learned_task = learned.clone();
        fabric.spawn(
            "driver",
            None,
            Box::new(move |ctx| {
                use parquake_protocol::Encode;
                for cid in 0..2u32 {
                    ctx.send(
                        gw,
                        front,
                        ClientMessage::Connect {
                            client_id: cid,
                            arena: 0,
                        }
                        .to_bytes(),
                    );
                }
                let mut book: HashMap<u32, GwPlacement> = HashMap::new();
                // Collect acks (and lifecycle notices) until both
                // clients' placements are learned or time runs out.
                while book.len() < 2 && ctx.now() < end_time - 50_000_000 {
                    if !ctx.wait_readable(gw, Some(ctx.now() + 20_000_000)) {
                        continue;
                    }
                    while let Some(msg) = ctx.try_recv(gw) {
                        apply_outbound(&mut book, &msg.payload, port_pos.get(&msg.from).copied());
                    }
                }
                *learned_task.lock().unwrap() = book; // lockcheck: allow(raw-sync: test harness captures the driver's book for post-run asserts)
            }),
        );
        fabric.run();

        let book = learned.lock().unwrap(); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
        assert_eq!(book.len(), 2, "both clients should be acked: {book:?}");
        let threads: Vec<u16> = (0..2u32).map(|cid| book[&cid].thread).collect();
        assert_eq!(
            {
                let mut t = threads.clone();
                t.sort_unstable();
                t
            },
            vec![0, 1],
            "round-robin dealing should land the two clients on the two threads"
        );
        for cid in 0..2u32 {
            let dest = route_move(book.get(&cid).copied(), &arena_ports).unwrap();
            assert_eq!(
                dest.1, arena_ports[0][threads[cid as usize] as usize],
                "client {cid}'s moves must go to its dealt thread's port"
            );
        }
        // The pre-fix gateway would have sent both to thread 0's port.
        assert_ne!(
            route_move(book.get(&0).copied(), &arena_ports),
            route_move(book.get(&1).copied(), &arena_ports),
            "the two clients should route to different thread ports"
        );
    }

    /// Satellite regression (held-reply starvation): a reply retained
    /// for address learning must leave within one retry tick of the
    /// book entry appearing — even with zero further gateway traffic.
    /// Pre-fix, the outbound pump only retried on `wait_readable`
    /// wakeups, so this reply sat the full 250 ms retention window.
    #[test]
    fn held_reply_sends_within_one_tick_of_address_learning() {
        let Ok(client_sock) = UdpSocket::bind("127.0.0.1:0") else {
            eprintln!("skipping: loopback UDP not permitted");
            return;
        };
        client_sock
            .set_read_timeout(Some(Duration::from_millis(800)))
            .unwrap();
        let gw_sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let (real, fabric) = RealFabric::new_arc_pair();
        let gw = fabric.alloc_port();
        let addrs: Arc<StripedBook<AddrEntry>> = Arc::new(StripedBook::new(1));
        let out = Arc::new(Mutex::new(vec![OutCounters::default()]));
        spawn_outbound_pump(
            &fabric,
            OutboundShard {
                shard: 0,
                gw,
                sock: gw_sock,
                addrs: addrs.clone(),
                placements: Arc::new(StripedBook::new(1)),
                port_pos: Arc::new(HashMap::new()),
                end_time: 600_000_000, // 600ms
                out: out.clone(),
            },
        );
        // A reply for client 42 reaches the gateway before any address
        // is learned (e.g. a migration re-ack beating the handshake).
        let reply = ServerMessage::Reply {
            client_id: 42,
            seq: 1,
            sent_at_echo: 0,
            frame: 1,
            assigned_thread: 0,
            origin: parquake_math::Vec3::ZERO,
            delta: false,
            entities: Vec::new(),
            removed: Vec::new(),
            events: Vec::new(),
            predict: None,
        }
        .to_bytes();
        real.send_external(gw, gw, reply);
        let client_addr = client_sock.local_addr().unwrap();
        let learner = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let inserted_at = Instant::now();
            addrs.with(42, |book| {
                book.insert(
                    42,
                    AddrEntry {
                        addr: client_addr,
                        last_seen: Instant::now(),
                    },
                );
            });
            let mut buf = [0u8; MAX_DATAGRAM];
            let got = client_sock.recv_from(&mut buf).is_ok();
            (inserted_at, Instant::now(), got)
        });
        fabric.run();
        let (inserted_at, received_at, got) = learner.join().unwrap();
        assert!(got, "held reply never delivered");
        let lag = received_at.duration_since(inserted_at);
        // One 25 ms tick plus generous scheduling slack — far below
        // the pre-fix floor of REPLY_RETAIN (250 ms).
        assert!(
            lag < Duration::from_millis(120),
            "held reply took {lag:?} after the address was learned"
        );
        assert_eq!(out.lock().unwrap()[0].unroutable, 0); // lockcheck: allow(raw-sync: host-side read after the run joined, no tasks alive)
    }

    #[test]
    fn shard_zero_keeps_the_configured_fault_seed() {
        // Byte-identity anchor: at `--gateway-shards 1` the only pump
        // draws the exact pre-shard lottery sequence.
        assert_eq!(shard_fault_seed(0xDEAD_BEEF, 0), 0xDEAD_BEEF);
        assert_ne!(shard_fault_seed(0xDEAD_BEEF, 1), 0xDEAD_BEEF);
        assert_ne!(
            shard_fault_seed(0xDEAD_BEEF, 1),
            shard_fault_seed(0xDEAD_BEEF, 2)
        );
    }

    #[test]
    fn striped_book_is_coherent_across_stripes() {
        let book: StripedBook<u64> = StripedBook::new(4);
        for cid in 0..256u32 {
            book.with(cid, |m| m.insert(cid, u64::from(cid) * 3));
        }
        for cid in 0..256u32 {
            assert_eq!(book.get(cid), Some(u64::from(cid) * 3));
        }
        assert_eq!(book.get(9999), None);
        // Spread sanity: 256 sequential ids should not all hash to one
        // stripe.
        let used = (0..book.stripes.len())
            .filter(|&s| !book.stripes[s].lock().unwrap().is_empty()) // lockcheck: allow(raw-sync: single-threaded test inspection of the striped book)
            .count();
        assert!(used > 1, "all 256 clients landed on one stripe");
    }

    #[test]
    fn missing_lane_counters_keep_the_report_open() {
        let mut r = UdpArenaReport {
            lanes: vec![balanced_lane()],
            ..UdpArenaReport::default()
        };
        assert!(r.accounting_closed(), "{r:?}");
        // The same balanced books with a lane whose director-side
        // counters were absent must refuse to close: zero-filling the
        // row would fake a closed identity over a drifted fleet view.
        r.lanes_missing_counters.push(0);
        assert!(!r.accounting_closed(), "{r:?}");
    }

    #[test]
    fn report_accounting_closes_every_layer() {
        let mut r = UdpArenaReport {
            datagrams_in: 100,
            decode_rejected: 2,
            spoof_rejected: 1,
            arena_unknown: 3,
            fault_dropped: 4,
            fault_duplicated: 5,
            forwarded: 95, // 90 delivered + 5 duplicates
            to_front: 45,
            front_drained: 40,
            front_queue_dropped: 3,
            front_pending: 2,
            lanes: vec![balanced_lane(), balanced_lane()],
            ..UdpArenaReport::default()
        };
        assert!(r.accounting_closed(), "{r:?}");
        // A single open lane opens the whole report.
        r.lanes[1].processed -= 1;
        assert!(!r.accounting_closed(), "{r:?}");
    }

    #[test]
    fn report_requires_shard_lanes_to_sum_to_totals() {
        let shard = |s: usize, datagrams: u64| GatewayLane {
            shard: s,
            datagrams_in: datagrams,
            forwarded: datagrams,
            ..GatewayLane::default()
        };
        let mut r = UdpArenaReport {
            datagrams_in: 30,
            forwarded: 30,
            to_front: 0,
            shards: vec![shard(0, 10), shard(1, 20)],
            ..UdpArenaReport::default()
        };
        assert!(r.accounting_closed(), "{r:?}");
        // A shard lane that doesn't close opens the report…
        r.shards[0].fault_dropped += 1;
        assert!(!r.accounting_closed(), "{r:?}");
        r.shards[0].fault_dropped -= 1;
        // …and closed shard lanes that don't SUM to the totals (a
        // datagram counted on a shard but missing from the aggregate)
        // open it too.
        r.shards[1].datagrams_in -= 5;
        r.shards[1].forwarded -= 5;
        assert!(!r.accounting_closed(), "{r:?}");
    }

    /// Satellite: the per-shard counter model. Any partition of one
    /// seeded fate stream across shards must (a) leave every shard
    /// lane individually closed and (b) sum exactly to the lane a
    /// single-socket gateway would have counted for the same stream —
    /// sharding the gateway must never create or lose a datagram fate.
    fn apply_fate(lane: &mut GatewayLane, fate: u8, dups: u8) {
        match fate % 5 {
            0 => {
                lane.datagrams_in += 1;
                lane.decode_rejected += 1;
            }
            1 => {
                lane.datagrams_in += 1;
                lane.spoof_rejected += 1;
            }
            2 => {
                lane.datagrams_in += 1;
                lane.arena_unknown += 1;
            }
            3 => {
                lane.datagrams_in += 1;
                lane.fault_dropped += 1;
            }
            _ => {
                let copies = 1 + u64::from(dups % 3);
                lane.datagrams_in += 1;
                lane.fault_duplicated += copies - 1;
                lane.forwarded += copies;
                if fate % 2 == 0 {
                    lane.to_front += 1;
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn sharded_lanes_sum_to_the_single_socket_totals(
            stream in prop::collection::vec((any::<u8>(), any::<u8>(), 0usize..4), 0..200),
            shards in 1usize..4,
        ) {
            let mut single = GatewayLane::new(0);
            let mut lanes: Vec<GatewayLane> =
                (0..shards).map(GatewayLane::new).collect();
            for &(fate, dups, pick) in &stream {
                apply_fate(&mut single, fate, dups);
                apply_fate(&mut lanes[pick % shards], fate, dups);
            }
            for lane in &lanes {
                prop_assert!(lane.accounting_closed(), "shard lane open: {lane:?}");
            }
            prop_assert!(single.accounting_closed());
            let agg = GatewayLane::aggregate(&lanes);
            prop_assert_eq!(agg.datagrams_in, single.datagrams_in);
            prop_assert_eq!(agg.decode_rejected, single.decode_rejected);
            prop_assert_eq!(agg.spoof_rejected, single.spoof_rejected);
            prop_assert_eq!(agg.arena_unknown, single.arena_unknown);
            prop_assert_eq!(agg.fault_dropped, single.fault_dropped);
            prop_assert_eq!(agg.fault_duplicated, single.fault_duplicated);
            prop_assert_eq!(agg.forwarded, single.forwarded);
            prop_assert_eq!(agg.to_front, single.to_front);
            prop_assert!(agg.accounting_closed());
        }
    }
}
