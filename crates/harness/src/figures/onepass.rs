//! One-pass locking — the paper's §5.1 future work ("restructuring
//! move execution and areanode partitioning to allow threads to lock
//! regions once per request could further reduce lock overheads"),
//! implemented and measured against the paper's two policies.

use parquake_metrics::report::{f, numeric_table};
use parquake_metrics::Bucket;
use parquake_server::{LockPolicy, ServerKind};

use crate::figures::common::{kind_label, run_config, SweepOpts};

/// Run the three-policy comparison.
pub fn run(opts: &SweepOpts) -> String {
    let players = if opts.players.contains(&144) {
        144
    } else {
        *opts.players.last().unwrap_or(&144)
    };
    let mut rows = Vec::new();
    for threads in [4u32, 8] {
        for policy in [
            LockPolicy::Baseline,
            LockPolicy::Optimized,
            LockPolicy::OnePass,
        ] {
            let kind = ServerKind::Parallel {
                threads,
                locking: policy,
            };
            let out = run_config(players, kind, opts);
            let m = out.server.merged();
            rows.push(vec![
                format!("{} {players}p", kind_label(kind)),
                f(out.response_rate(), 0),
                f(out.avg_response_ms(), 1),
                f(m.breakdown.percent(Bucket::Lock), 1),
                f(m.lock.relock_fraction() * 100.0, 1),
                f(
                    m.lock.leaf_lock_events as f64 / m.lock.requests.max(1) as f64,
                    2,
                ),
            ]);
        }
    }
    let mut s =
        String::from("== One-pass locking (paper 5.1 future work) vs the paper's policies ==\n\n");
    s.push_str(&numeric_table(
        &[
            "configuration",
            "replies/s",
            "resp-ms",
            "lock%",
            "relock%",
            "leaf-locks/req",
        ],
        &rows,
    ));
    s.push_str(
        "\nOne-pass acquires the union region once per request: relocking\n\
         drops to zero and lock-call overhead shrinks, at the price of a\n\
         slightly larger region held slightly longer.\n",
    );
    s
}
