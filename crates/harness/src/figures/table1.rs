//! Table 1: configuration of the game server system.
//!
//! The paper's table describes the physical testbed; ours reports the
//! modelled machine (the virtual SMP parameters) next to the paper's
//! values so the substitution is explicit.

use parquake_fabric::VirtualSmpConfig;
use parquake_metrics::report::numeric_table;

/// Render the configuration table.
pub fn run() -> String {
    let smp = VirtualSmpConfig::default();
    let rows = vec![
        vec![
            "CPUs".to_string(),
            "4 x Intel Xeon 1.4 GHz, 2-way HT".to_string(),
            format!(
                "virtual SMP: {} cores x {} contexts (eff {:.2})",
                smp.cores,
                if smp.hyperthreading { 2 } else { 1 },
                smp.ht_efficiency
            ),
        ],
        vec![
            "caches".to_string(),
            "12KB L1 trace, 8KB L1D, 256KB L2".to_string(),
            "cost model (ns/op), see CostModel::default()".to_string(),
        ],
        vec![
            "memory/bus".to_string(),
            "2 GB, 400 MHz FSB".to_string(),
            "host memory (simulation state)".to_string(),
        ],
        vec![
            "OS".to_string(),
            "Linux RedHat 7.3".to_string(),
            format!(
                "{} / deterministic virtual-time scheduler",
                std::env::consts::OS
            ),
        ],
        vec![
            "threads".to_string(),
            "LinuxThreads (pthreads)".to_string(),
            "fabric mutex/condvar primitives".to_string(),
        ],
        vec![
            "NIC".to_string(),
            "100 MBit Ethernet".to_string(),
            format!(
                "modelled link, {:.2} ms one-way",
                smp.link_latency_ns as f64 / 1e6
            ),
        ],
    ];
    let mut out = String::from("== Table 1: game server system configuration ==\n\n");
    out.push_str(&numeric_table(
        &["component", "paper", "this reproduction"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_mentions_both_machines() {
        let t = super::run();
        assert!(t.contains("Xeon"));
        assert!(t.contains("virtual SMP"));
        assert!(t.contains("100 MBit"));
    }
}
