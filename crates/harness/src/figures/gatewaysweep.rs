//! Gateway shard sweep (extension): one real UDP port, the same
//! multi-arena fleet, served by 1/2/4 `SO_REUSEPORT` pump pairs.
//!
//! The paper scales the world *inside* the server; this figure scales
//! the front door. A single inbound pump is one thread doing one
//! `recvfrom` per datagram plus one lock acquisition per book touch —
//! at high fan-in it saturates before the arenas do. Sharding the
//! gateway binds N sockets to the one port (the kernel's 4-tuple hash
//! spreads client flows across them), gives every shard its own
//! fault lottery and [`parquake_metrics::GatewayLane`], stripes the
//! address/placement books so shards almost never contend, and drains
//! datagram bursts with `recvmmsg`/`sendmmsg` where the kernel offers
//! them. At `--gateway-shards 1` the gateway is the classic
//! single-pump build, byte-identical lottery included — the sweep's
//! baseline row is exactly the pre-shard gateway.
//!
//! Scaling expectation: shard speedup needs cores for the pumps to
//! run on. On a multi-core host the 4-shard row should clear 1.3× the
//! single-pump throughput at saturating fan-in; on a single-core host
//! the pumps time-slice one processor and the sweep degenerates to a
//! (cheap) correctness exercise — the printed report says which case
//! the numbers describe.

use std::net::SocketAddr;
use std::time::Duration;

use parquake_metrics::report::{f, numeric_table};

use crate::figures::common::SweepOpts;
use crate::udp_arena::{
    run_udp_arena_clients_sharded, run_udp_arena_server, UdpArenaOpts, UdpArenaReport,
};

/// Shard counts swept over the fixed fleet.
pub const SHARDS: [u32; 3] = [1, 2, 4];

/// The sweep's fleet shape: 8 arenas × 32 slots on a 4-worker pool.
pub const ARENAS: u32 = 8;
pub const SLOTS: u16 = 32;
pub const WORKERS: u32 = 4;

/// Loopback ports for the sweep, one per shard point so a lingering
/// socket from the previous point can never cross-talk.
const BASE_PORT: u16 = 28500;

/// One sweep point: serve the fleet behind `shards` pump pairs and
/// drive it with `players` bots spread over `max(shards, 2) * 2`
/// client sockets (reuseport balances flows, not datagrams, so the
/// driver must offer at least as many 4-tuples as there are shards).
pub fn run_point(
    port: u16,
    shards: u32,
    players: u32,
    duration: Duration,
) -> std::io::Result<(UdpArenaReport, u64, u64, f64)> {
    let opts = UdpArenaOpts {
        port,
        gateway_shards: shards,
        arenas: ARENAS,
        workers: WORKERS,
        slots_per_arena: SLOTS,
        duration: duration + Duration::from_millis(400),
        ..UdpArenaOpts::default()
    };
    let server = std::thread::spawn(move || run_udp_arena_server(&opts));
    std::thread::sleep(Duration::from_millis(150));
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
    let sockets = shards.max(2) * 2;
    let (sent, received, avg_ms, _per_arena, _restarts, _rehomed) =
        run_udp_arena_clients_sharded(addr, ARENAS, players, duration, None, sockets)?;
    let report = server.join().expect("gateway server thread")?;
    Ok((report, sent, received, avg_ms))
}

/// Run the shard sweep and render the report.
pub fn run(opts: &SweepOpts) -> String {
    let players = ARENAS * SLOTS as u32;
    let duration = Duration::from_secs_f64(opts.duration_secs.max(1.0));
    let cap = crate::mmsg::capability();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut s = format!(
        "== Gateway shard sweep: {ARENAS} arenas x {SLOTS} slots, {players} bots, \
         {}-worker pool, {:.0}s per point ==\n\n",
        WORKERS,
        duration.as_secs_f64()
    );
    s.push_str(&format!(
        "host: {cores} core(s); kernel capabilities: {}, {}\n\n",
        if cap.reuseport {
            "SO_REUSEPORT"
        } else {
            "no SO_REUSEPORT (shared-socket fallback)"
        },
        if cap.mmsg {
            "recvmmsg/sendmmsg"
        } else {
            "one-datagram syscalls"
        },
    ));

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut baseline = 0.0f64;
    let mut speedup4 = 0.0f64;
    for (i, &shards) in SHARDS.iter().enumerate() {
        let port = BASE_PORT + i as u16;
        match run_point(port, shards, players, duration) {
            Ok((report, sent, received, avg_ms)) => {
                let rate = received as f64 / duration.as_secs_f64();
                if shards == 1 {
                    baseline = rate;
                }
                if shards == 4 && baseline > 0.0 {
                    speedup4 = rate / baseline;
                }
                let busy = report.shards.iter().filter(|l| l.datagrams_in > 0).count();
                let batched = report
                    .shards
                    .iter()
                    .map(|l| l.batched_recvs + l.batched_sends)
                    .sum::<u64>();
                rows.push(vec![
                    format!("shards{shards}"),
                    sent.to_string(),
                    f(rate, 0),
                    if baseline > 0.0 {
                        f(rate / baseline, 2)
                    } else {
                        "-".into()
                    },
                    f(avg_ms, 2),
                    format!("{busy}/{shards}"),
                    batched.to_string(),
                    if report.accounting_closed() {
                        "closes".into()
                    } else {
                        "OPEN".into()
                    },
                ]);
            }
            Err(e) => {
                rows.push(vec![
                    format!("shards{shards}"),
                    format!("error: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    s.push_str(&numeric_table(
        &[
            "configuration",
            "sent",
            "replies/s",
            "vs 1 shard",
            "resp-ms",
            "busy-shards",
            "batched-ops",
            "books",
        ],
        &rows,
    ));
    s.push('\n');
    if cores >= 4 {
        s.push_str(&format!(
            "4 shards serve {speedup4:.2}x the single-pump reply rate. Each pump\n\
             pair owns a reuseport socket, a striped slice of the books, and a\n\
             batched syscall path, so the front door scales with cores until\n\
             the arenas saturate.\n"
        ));
    } else {
        s.push_str(&format!(
            "HARDWARE CAVEAT: this host has {cores} core(s); the {} pump threads,\n\
             {WORKERS} pool workers and the bot driver time-slice the same\n\
             processor, so shard speedup ({speedup4:.2}x at 4 shards) measures\n\
             scheduler interleaving, not parallel syscall capacity. The sweep\n\
             still proves the sharded books close at every width; rerun on a\n\
             >=4-core host for the throughput claim.\n",
            SHARDS[SHARDS.len() - 1]
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One cheap sweep point end-to-end: the sharded gateway under the
    /// figure's fleet shape must answer bots and close every book. No
    /// throughput assertion — scaling needs cores this runner may not
    /// have.
    #[test]
    fn sweep_point_closes_books_at_two_shards() {
        let port = 28520;
        if std::net::UdpSocket::bind(("127.0.0.1", port)).is_err() {
            eprintln!("skipping: loopback UDP not permitted");
            return;
        }
        let (report, sent, received, _avg) =
            run_point(port, 2, 32, Duration::from_millis(900)).expect("sweep point");
        assert!(sent > 0 && received > 0, "no traffic: {report:?}");
        assert_eq!(report.shards.len(), 2);
        assert!(report.accounting_closed(), "books open: {report:?}");
    }
}
