//! §4.2 and §5.2 statistics: per-frame workload imbalance and the
//! decomposition of inter-frame wait time.
//!
//! The paper reports, at 128 players: 4 / 2.5 / 1.5 requests per thread
//! per frame for 2/4/8 threads; for the 2-thread configuration a mean
//! per-frame request difference of 3.3 (σ 2.5); and that ~25% of
//! inter-frame wait is due to the world update with ~75% due to waiting
//! for the previous frame to complete.

use parquake_metrics::report::{f, numeric_table};
use parquake_metrics::Bucket;
use parquake_server::{LockPolicy, ServerKind};

use crate::figures::common::{kind_label, run_config, SweepOpts};

/// Run the analysis at a fixed player count (the paper uses 128).
pub fn run(opts: &SweepOpts) -> String {
    let players = if opts.players.contains(&128) {
        128
    } else {
        *opts.players.last().unwrap_or(&128)
    };
    let mut rows = Vec::new();
    for threads in [2u32, 4, 8] {
        let kind = ServerKind::Parallel {
            threads,
            locking: LockPolicy::Optimized,
        };
        let out = run_config(players, kind, opts);
        let fs = &out.server.frames;
        let m = out.server.merged();
        let reqs_per_thread_frame = if fs.frames > 0 && fs.participants_sum > 0 {
            fs.requests_sum as f64 / fs.participants_sum as f64
        } else {
            0.0
        };
        rows.push(vec![
            format!("{} {players}p", kind_label(kind)),
            f(reqs_per_thread_frame, 2),
            f(fs.mean_imbalance(), 2),
            f(fs.stddev_imbalance(), 2),
            f(fs.interwait_world_share() * 100.0, 1),
            f((1.0 - fs.interwait_world_share()) * 100.0, 1),
            f(m.breakdown.fraction_non_idle(Bucket::InterWait) * 100.0, 1),
            f(m.breakdown.fraction_non_idle(Bucket::IntraWait) * 100.0, 1),
            f(
                100.0 * fs.frames_waited_on_world as f64
                    / (fs.frames.max(1) * threads as u64) as f64,
                1,
            ),
        ]);
    }
    let mut s = format!("== Wait-time analysis at {players} players (paper 4.2 / 5.2) ==\n\n");
    s.push_str(&numeric_table(
        &[
            "configuration",
            "req/thr/frame",
            "imb-mean",
            "imb-sd",
            "iw-world%",
            "iw-frame%",
            "interwait%ni",
            "intrawait%ni",
            "frames-waited-world%",
        ],
        &rows,
    ));

    // The paper's exact §4.2 measurement: the per-frame request
    // difference over the first fifty consecutive multi-threaded frames
    // of the 2-thread configuration.
    let kind = ServerKind::Parallel {
        threads: 2,
        locking: LockPolicy::Optimized,
    };
    let out = run_config(players, kind, opts);
    let first50 = out.server.timeline.first_multithreaded(50);
    if !first50.is_empty() {
        let diffs: Vec<u32> = first50.iter().map(|f| f.imbalance()).collect();
        let mean = diffs.iter().sum::<u32>() as f64 / diffs.len() as f64;
        let var = diffs
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / diffs.len() as f64;
        s.push_str(&format!(
            "\nfirst {} multi-threaded frames (2 threads): per-frame request diff\n  mean {:.2}, sd {:.2} (paper: 3.3, sd 2.5)\n  series: {:?}\n",
            diffs.len(),
            mean,
            var.sqrt(),
            diffs
        ));
    }
    s
}
