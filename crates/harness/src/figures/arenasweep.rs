//! Arena sweep (extension): one machine, fixed player total, carved
//! into 1/2/4/8 worlds on a shared 4-worker pool.
//!
//! The paper parallelizes one world across processors; this figure
//! measures the production dual — many small worlds multiplexed on the
//! same processors. The headline comparison: 4 workers serving 4×64
//! players in 4 arenas versus the same 4 workers serving 1×256 in one
//! world. One big world serializes on its single frame loop (the pool
//! can only ever run one frame of one arena at a time), so carving the
//! population into small worlds converts the machine's parallelism
//! into throughput without any intra-world locking at all. The paper's
//! parallel server at 256 players is included as the intra-world
//! reference point.

use parquake_bsp::mapgen::MapGenConfig;
use parquake_metrics::report::{f, numeric_table};
use parquake_server::{LockPolicy, ServerKind};

use crate::arena_experiment::{ArenaExperiment, ArenaExperimentConfig, ArenaOutcome};
use crate::figures::common::{kind_label, run_config, SweepOpts};

/// Arena splits swept over the fixed player total.
pub const SPLITS: [u32; 4] = [1, 2, 4, 8];

/// The figure's default machine shape: 4 pool workers, 256 players.
pub const WORKERS: u32 = 4;
pub const TOTAL_PLAYERS: u32 = 256;

/// Run one pooled split of `total` players into `arenas` arenas.
pub fn run_split(total: u32, arenas: u32, workers: u32, opts: &SweepOpts) -> ArenaOutcome {
    let cfg = ArenaExperimentConfig {
        players: total,
        arenas,
        workers,
        map: MapGenConfig::eval_arena(opts.seed),
        areanode_depth: opts.depth,
        duration_ns: (opts.duration_secs * 1e9) as u64,
        checking: false, // measured runs: checkers off, like release Quake
        ..ArenaExperimentConfig::default()
    };
    ArenaExperiment::new(cfg).run()
}

/// Run the full sweep and render the report.
pub fn run(opts: &SweepOpts) -> String {
    let total = TOTAL_PLAYERS;
    let outcomes: Vec<(u32, ArenaOutcome)> = SPLITS
        .iter()
        .map(|&arenas| (arenas, run_split(total, arenas, WORKERS, opts)))
        .collect();

    // The paper's intra-world answer at the same scale, for reference.
    let par_kind = ServerKind::Parallel {
        threads: WORKERS,
        locking: LockPolicy::Optimized,
    };
    let par = run_config(total, par_kind, opts);

    let mut s =
        format!("== Arena sweep (extension): {total} players, {WORKERS}-worker shared pool ==\n\n");
    let mut rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|(arenas, o)| {
            let idle: u64 = o
                .pool
                .as_ref()
                .map(|p| p.idle_ns_by_worker.iter().sum())
                .unwrap_or(0);
            let busy = 1.0 - idle as f64 / (WORKERS as f64 * o.duration_ns as f64);
            vec![
                format!("pool{WORKERS} {arenas}x{}", total / arenas),
                f(o.response_rate(), 0),
                f(o.avg_response_ms(), 1),
                o.connected.to_string(),
                o.aggregate.frames.to_string(),
                f(busy * 100.0, 1),
            ]
        })
        .collect();
    rows.push(vec![
        format!("{} 1x{total}", kind_label(par_kind)),
        f(par.response_rate(), 0),
        f(par.avg_response_ms(), 1),
        par.connected.to_string(),
        par.server.frame_count.to_string(),
        String::from("-"),
    ]);
    s.push_str(&numeric_table(
        &[
            "configuration",
            "replies/s",
            "resp-ms",
            "connected",
            "frames",
            "pool-busy%",
        ],
        &rows,
    ));
    s.push('\n');

    // Per-arena detail for the headline split (4 arenas): placement,
    // load and latency per world, plus the aggregate rollup row.
    if let Some((_, o)) = outcomes.iter().find(|(a, _)| *a == 4) {
        s.push_str(&format!(
            "-- per-arena detail, 4x{} (admission: {} routed, {} sticky, \
             {} explicit, {} rejected) --\n",
            total / 4,
            o.admission.routed,
            o.admission.sticky,
            o.admission.explicit_requests,
            o.admission.rejected_full,
        ));
        let mut detail: Vec<Vec<String>> = o
            .per_arena
            .iter()
            .map(|a| {
                vec![
                    format!("arena{}", a.arena),
                    a.admitted.to_string(),
                    f(a.response_rate(o.duration_ns), 0),
                    f(a.avg_response_ms(), 1),
                    a.frames.to_string(),
                    a.requests.to_string(),
                ]
            })
            .collect();
        detail.push(vec![
            "aggregate".into(),
            o.aggregate.admitted.to_string(),
            f(o.response_rate(), 0),
            f(o.avg_response_ms(), 1),
            o.aggregate.frames.to_string(),
            o.aggregate.requests.to_string(),
        ]);
        s.push_str(&numeric_table(
            &[
                "arena",
                "connects",
                "replies/s",
                "resp-ms",
                "frames",
                "requests",
            ],
            &detail,
        ));
        if let Some(p) = &o.pool {
            s.push_str(&format!(
                "pool frames by worker: {:?}; by arena: {:?}\n",
                p.frames_by_worker, p.frames_by_arena
            ));
        }
        s.push('\n');
    }

    let one = &outcomes[0].1;
    let four = outcomes
        .iter()
        .find(|(a, _)| *a == 4)
        .map(|(_, o)| o)
        .unwrap_or(one);
    s.push_str(&format!(
        "4x{} serves {:.1}x the aggregate response rate of 1x{total} on the\n\
         same 4 workers: a single world serializes on its frame loop, while\n\
         small worlds turn the pool's parallelism into throughput with no\n\
         intra-world locking. The par4-opt row shows what intra-world\n\
         parallelism buys instead when the population cannot be split.\n",
        total / 4,
        four.response_rate() / one.response_rate().max(1e-9),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE's acceptance bar, at CI scale: splitting a saturating
    /// population 4 ways over a 4-worker pool must at least double the
    /// aggregate response rate.
    #[test]
    fn four_arenas_double_one_big_world() {
        let opts = SweepOpts {
            duration_secs: 2.0,
            ..SweepOpts::default()
        };
        // 256 players saturate one sequential frame loop far past the
        // paper's fig. 4 knee; 4 worlds of 64 do not.
        let one = run_split(TOTAL_PLAYERS, 1, WORKERS, &opts);
        let four = run_split(TOTAL_PLAYERS, 4, WORKERS, &opts);
        assert_eq!(four.per_arena.len(), 4);
        assert!(
            four.response_rate() >= 2.0 * one.response_rate(),
            "4x64 = {:.0} replies/s, 1x256 = {:.0} replies/s",
            four.response_rate(),
            one.response_rate()
        );
        // And the split population is actually spread: every arena
        // admitted a fair share and replied.
        for a in &four.per_arena {
            assert!(a.admitted > 0 && a.response.received > 0);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let opts = SweepOpts {
            duration_secs: 1.0,
            ..SweepOpts::default()
        };
        let a = run_split(32, 2, 2, &opts);
        let b = run_split(32, 2, 2, &opts);
        assert_eq!(a.world_hashes, b.world_hashes);
        assert_eq!(a.aggregate.replies, b.aggregate.replies);
    }
}
