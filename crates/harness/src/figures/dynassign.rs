//! Dynamic region-affine player assignment — the paper's §5.1 future
//! work ("dynamically assigning threads to players taking into account
//! the region they are located may reduce contention"), implemented and
//! measured against the paper's static block assignment.
//!
//! Every reassignment period the master sorts active players by the
//! areanode they occupy and steers each client (through its replies) to
//! the thread owning that part of the world, so concurrently executing
//! threads mostly lock disjoint leaves.

use parquake_bsp::mapgen::MapGenConfig;
use parquake_metrics::report::{f, numeric_table};
use parquake_metrics::Bucket;
use parquake_server::{Assignment, LockPolicy, ServerKind};

use crate::experiment::{Experiment, ExperimentConfig};
use crate::figures::common::SweepOpts;

/// Run the static-vs-dynamic comparison.
pub fn run(opts: &SweepOpts) -> String {
    let mut rows = Vec::new();
    for threads in [4u32, 8] {
        for &players in &[128u32, 160] {
            for (name, assignment) in [
                ("static", Assignment::Static),
                ("region", Assignment::RegionAffine { period_frames: 16 }),
            ] {
                let out = Experiment::new(ExperimentConfig {
                    players,
                    server: ServerKind::Parallel {
                        threads,
                        // Optimized locking: region locks are local, so
                        // spatial clustering can actually show up (the
                        // baseline's whole-map locks share every leaf
                        // regardless of assignment).
                        locking: LockPolicy::Optimized,
                    },
                    map: MapGenConfig::eval_arena(opts.seed),
                    duration_ns: (opts.duration_secs * 1e9) as u64,
                    assignment,
                    checking: false,
                    ..ExperimentConfig::default()
                })
                .run();
                let m = out.server.merged();
                rows.push(vec![
                    format!("par{threads}-{name} {players}p"),
                    f(out.response_rate(), 0),
                    f(out.avg_response_ms(), 1),
                    f(m.breakdown.percent(Bucket::Lock), 1),
                    f(m.lock.leaf_ns as f64 / m.requests.max(1) as f64 / 1000.0, 1),
                    f(out.server.frames.avg_shared_leaf_percent(), 1),
                ]);
            }
        }
    }
    let mut s = String::from("== Dynamic region-affine assignment (paper 5.1 future work) ==\n\n");
    s.push_str(&numeric_table(
        &[
            "configuration",
            "replies/s",
            "resp-ms",
            "lock%",
            "leaf-wait us/req",
            "shared-leaves%",
        ],
        &rows,
    ));
    s.push_str(
        "\nRegion-affine steering clusters each thread's players in space,\n\
         so concurrent request processing contends for fewer shared\n\
         leaves (lower leaf wait per request) than static block\n\
         assignment — the effect the paper predicted.\n",
    );
    s
}
