//! Delta-compressed replies — a QuakeWorld-authentic extension the
//! paper's server inherited from the original codebase but whose effect
//! the paper never isolates: send only entities that changed since the
//! client's last acknowledged state, plus removal notices.
//!
//! Reply formation dominates server time (paper §4.1: reply ≈ 2× the
//! request phase), so compressing it moves the saturation point — this
//! study quantifies by how much.

use parquake_bsp::mapgen::MapGenConfig;
use parquake_metrics::report::{f, numeric_table};
use parquake_metrics::Bucket;
use parquake_server::{LockPolicy, ServerKind};

use crate::experiment::{Experiment, ExperimentConfig};
use crate::figures::common::{kind_label, SweepOpts};

/// Run the off/on comparison across the player sweep.
pub fn run(opts: &SweepOpts) -> String {
    let mut rows = Vec::new();
    for kind in [
        ServerKind::Sequential,
        ServerKind::Parallel {
            threads: 4,
            locking: LockPolicy::Optimized,
        },
    ] {
        for &players in &opts.players {
            for (name, delta) in [("full", false), ("delta", true)] {
                let out = Experiment::new(ExperimentConfig {
                    players,
                    server: kind,
                    map: MapGenConfig::eval_arena(opts.seed),
                    duration_ns: (opts.duration_secs * 1e9) as u64,
                    delta_compression: delta,
                    checking: false,
                    ..ExperimentConfig::default()
                })
                .run();
                let bd = out.server.merged().breakdown;
                rows.push(vec![
                    format!("{}-{name} {players}p", kind_label(kind)),
                    f(out.response_rate(), 0),
                    f(out.avg_response_ms(), 1),
                    f(bd.percent(Bucket::Reply), 1),
                    f(bd.percent(Bucket::Idle), 1),
                ]);
            }
        }
    }
    let mut s = String::from("== Delta-compressed replies (QuakeWorld-style, extension) ==\n\n");
    s.push_str(&numeric_table(
        &["configuration", "replies/s", "resp-ms", "reply%", "idle%"],
        &rows,
    ));
    s.push_str(
        "\nDelta compression shrinks the reply phase (static items and\n\
         teleporters stop being re-encoded every frame), which raises\n\
         the saturation point of every server — reply formation is the\n\
         dominant cost in this workload, exactly as the paper measured.\n",
    );
    s
}
