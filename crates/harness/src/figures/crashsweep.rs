//! Crashsweep figure (extension): response-rate retention under an
//! injected per-frame panic lottery.
//!
//! A supervised pooled directory runs the same workload at increasing
//! crash rates. Every injected panic fates only its arena: the
//! supervisor restores the cell from its last checkpoint, replays the
//! ledger, and clients ride through on the rebind grace. The figure
//! reports the aggregate response rate at each crash rate as a
//! fraction of the fault-free supervised run — the cost of crashing is
//! the frames lost between the last checkpoint and the restore, not
//! the session.

use parquake_arena::AdmissionPolicy;
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::fault::FaultConfig;
use parquake_fabric::Nanos;
use parquake_metrics::report::{f, numeric_table};

use crate::arena_experiment::{ArenaExperiment, ArenaExperimentConfig, ArenaOutcome};
use crate::figures::common::SweepOpts;

/// The figure's machine shape: 4 arenas, 8 slots each, a 2-worker
/// pool, 24 players.
pub const ARENAS: u32 = 4;
pub const SLOTS: u16 = 8;
pub const PLAYERS: u32 = 24;
pub const WORKERS: u32 = 2;

/// Checkpoint cadence named by the acceptance bar.
pub const CHECKPOINT_INTERVAL: u32 = 64;

/// Per-frame panic probabilities swept (0 = the fault-free baseline,
/// still supervised so the comparison isolates the crashes from the
/// checkpointing overhead).
pub const CRASH_RATES: [f64; 4] = [0.0, 0.0025, 0.005, 0.01];

/// Run one supervised configuration at the given per-frame panic
/// probability.
pub fn run_at(crash_rate: f64, opts: &SweepOpts) -> ArenaOutcome {
    let duration_ns = (opts.duration_secs * 1e9) as Nanos;
    let cfg = ArenaExperimentConfig {
        players: PLAYERS,
        arenas: ARENAS,
        workers: WORKERS,
        policy: AdmissionPolicy::Explicit,
        map: MapGenConfig::small_arena(opts.seed),
        areanode_depth: opts.depth,
        duration_ns,
        slots_per_arena: Some(SLOTS),
        supervision: true,
        checkpoint_interval: CHECKPOINT_INTERVAL,
        frame_faults: (crash_rate > 0.0).then(|| FaultConfig {
            panic_per_frame: crash_rate as f32,
            seed: opts.seed ^ 0xC4A5_5EED,
            ..FaultConfig::none()
        }),
        checking: false, // measured run: checkers off, like release Quake
        ..ArenaExperimentConfig::default()
    };
    ArenaExperiment::new(cfg).run()
}

/// Run the sweep and render the report.
pub fn run(opts: &SweepOpts) -> String {
    let rows: Vec<(f64, ArenaOutcome)> = CRASH_RATES
        .iter()
        .map(|&rate| (rate, run_at(rate, opts)))
        .collect();
    let baseline = rows[0].1.response_rate();

    let mut s = format!(
        "== Crashsweep (extension): {PLAYERS} players over {ARENAS} supervised \
         arenas, {WORKERS}-worker pool, checkpoint every {CHECKPOINT_INTERVAL} \
         frames ==\n\n"
    );

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(rate, o)| {
            let sup = &o.supervisor;
            vec![
                format!("{:.2}%", rate * 100.0),
                f(o.response_rate(), 0),
                if baseline > 0.0 {
                    format!("{:.1}%", o.response_rate() / baseline * 100.0)
                } else {
                    "-".to_string()
                },
                sup.panics_caught.to_string(),
                sup.restarts.to_string(),
                f(sup.avg_recovery_ms(), 2),
                sup.replayed_placements.to_string(),
                o.connected.to_string(),
            ]
        })
        .collect();
    s.push_str(&numeric_table(
        &[
            "crash/frame",
            "replies/s",
            "retention",
            "panics",
            "restores",
            "recover-ms",
            "replayed",
            "connected",
        ],
        &table,
    ));
    s.push('\n');

    for (rate, o) in &rows {
        let adm = &o.admission;
        s.push_str(&format!(
            "crash {:>5.2}%: population identity placed {} == departed {} + \
             resident {} ({}); checkpoints {} ({} KiB)\n",
            rate * 100.0,
            adm.placed,
            adm.departed,
            adm.resident,
            if adm.population_closed() {
                "closed"
            } else {
                "OPEN"
            },
            o.supervisor.checkpoints_taken,
            o.supervisor.checkpoint_bytes / 1024,
        ));
    }

    s.push_str(
        "\nEvery injected panic is fenced to its arena and restored from the\n\
         last checkpoint with the ledger replayed, so the directory never\n\
         crashes and the population identity closes at every crash rate.\n\
         Clients ride through restarts on the rebind grace; the retention\n\
         column shows the response rate as a fraction of the fault-free\n\
         supervised run (acceptance bar: >= 70% at a 1%-per-frame lottery).\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci_opts() -> SweepOpts {
        SweepOpts {
            duration_secs: 4.0,
            ..SweepOpts::default()
        }
    }

    /// The ISSUE's acceptance bar at CI scale: a 1%-per-frame panic
    /// lottery with checkpoint interval 64 retains >= 70% of the
    /// fault-free response rate, no directory-level crash, and the
    /// population identity closes across every restart.
    #[test]
    fn one_percent_lottery_retains_seventy_percent_response_rate() {
        let opts = ci_opts();
        let base = run_at(0.0, &opts);
        let hit = run_at(0.01, &opts);

        // The run completing at all is the zero-directory-crash bar:
        // a leaked panic would abort the whole fabric.
        assert!(hit.supervisor.panics_caught >= 1, "lottery never fired");
        assert!(
            hit.supervisor.restarts >= hit.supervisor.panics_caught,
            "every crash must be restored: {:?}",
            hit.supervisor
        );
        assert!(
            hit.admission.population_closed(),
            "population identity must close across every restart: {:?}",
            hit.admission
        );
        assert_eq!(hit.connected, PLAYERS, "clients must ride through");

        let retention = hit.response_rate() / base.response_rate();
        assert!(
            retention >= 0.70,
            "response-rate retention {:.1}% < 70% (base {:.0}/s, crashed {:.0}/s)",
            retention * 100.0,
            base.response_rate(),
            hit.response_rate()
        );
    }

    #[test]
    fn fault_free_supervised_baseline_is_quiet() {
        let base = run_at(0.0, &ci_opts());
        assert_eq!(base.supervisor.panics_caught, 0);
        assert_eq!(base.supervisor.restarts, 0);
        assert!(base.supervisor.checkpoints_taken > 0);
        assert_eq!(base.connected, PLAYERS);
        assert!(base.admission.population_closed());
    }

    #[test]
    fn crashsweep_runs_are_deterministic() {
        let opts = ci_opts();
        let a = run_at(0.005, &opts);
        let b = run_at(0.005, &opts);
        assert_eq!(a.supervisor.panics_caught, b.supervisor.panics_caught);
        assert_eq!(a.supervisor.restarts, b.supervisor.restarts);
        assert_eq!(a.world_hashes, b.world_hashes);
        assert_eq!(a.aggregate.replies, b.aggregate.replies);
    }
}
