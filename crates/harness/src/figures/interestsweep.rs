//! Interest-matching figure (extension): the batch DDM sweep against
//! the per-client visibility scan.
//!
//! The paper's reply phase scans every entity for every replying
//! client — V×E distance tests per frame, the dominant cost once the
//! world is big and the server saturated. The sweep builds one sorted
//! entity index per frame and matches all viewers with two monotone
//! merge passes per axis, so most viewer–entity pairs are disposed of
//! without ever being examined. The figure runs a saturated 160-player
//! world on a map large enough that each view window covers only a
//! sliver of it, and compares scan, sweep, and sweep-with-oracle — the
//! last re-running the scan UNCHARGED as a shadow oracle for every
//! reply, so it proves the sweep byte-identical on the same virtual
//! schedule.

use parquake_bsp::mapgen::MapGenConfig;
use parquake_metrics::report::{f, numeric_table};
use parquake_server::{InterestMode, ServerKind};

use crate::experiment::{Experiment, ExperimentConfig, Outcome};
use crate::figures::common::SweepOpts;

/// Saturation population (the paper's top of Fig 4's sweep).
pub const PLAYERS: u32 = 160;
/// View distance override: the default 1600 would cover most of even a
/// big map; 800 keeps each view window a small fraction of the world
/// so the broad phase has something to prune.
pub const VIEW_DIST: f32 = 800.0;

/// A map big enough that interest matters: 18×18 rooms (~7.5k units a
/// side against the 800-unit view window) densely littered with items,
/// so the entity population dwarfs the player count.
fn big_world(seed: u64) -> MapGenConfig {
    MapGenConfig {
        grid_w: 18,
        grid_h: 18,
        items_per_room: 3,
        teleporter_pairs: 8,
        ..MapGenConfig::large_arena(seed)
    }
}

/// Run the saturated world with one interest mode.
pub fn run_at(interest: InterestMode, opts: &SweepOpts) -> Outcome {
    let cfg = ExperimentConfig {
        players: PLAYERS,
        server: ServerKind::Sequential,
        map: big_world(opts.seed),
        areanode_depth: opts.depth,
        duration_ns: (opts.duration_secs * 1e9) as u64,
        delta_compression: true,
        interest,
        view_dist: Some(VIEW_DIST),
        checking: false, // measured run: checkers off, like release Quake
        ..ExperimentConfig::default()
    };
    Experiment::new(cfg).run()
}

/// Run all three modes and render the report.
pub fn run(opts: &SweepOpts) -> String {
    let scan = run_at(InterestMode::Scan, opts);
    let sweep = run_at(InterestMode::Sweep, opts);
    let oracle = run_at(InterestMode::SweepOracle, opts);

    let mut s = format!(
        "== Interest matching (extension): {PLAYERS} players saturating an \
         18x18-room world, view distance {VIEW_DIST} ==\n\n"
    );

    let row = |label: &str, o: &Outcome| {
        let m = o.server.merged();
        let ist = &o.server.interest;
        vec![
            label.to_string(),
            f(o.response_rate(), 0),
            f(o.avg_response_ms(), 1),
            m.replies.to_string(),
            o.server.frame_count.to_string(),
            m.reply_sizes.percentile(0.50).to_string(),
            m.reply_sizes.percentile(0.95).to_string(),
            m.reply_sizes.max().to_string(),
            ist.pairs_tested.to_string(),
            ist.pairs_skipped.to_string(),
        ]
    };
    s.push_str(&numeric_table(
        &[
            "matcher",
            "replies/s",
            "resp-ms",
            "replies",
            "frames",
            "ents-p50",
            "ents-p95",
            "ents-max",
            "pairs-tested",
            "pairs-skipped",
        ],
        &[
            row("scan", &scan),
            row("sweep", &sweep),
            row("sweep-oracle", &oracle),
        ],
    ));
    s.push('\n');

    let ratio = sweep.response_rate() / scan.response_rate().max(1e-9);
    s.push_str(&format!(
        "aggregate response rate: {} -> {} resp/s ({:.2}x)\n",
        f(scan.response_rate(), 0),
        f(sweep.response_rate(), 0),
        ratio,
    ));
    let ist = &sweep.server.interest;
    s.push_str(&format!(
        "sweep accounting: {} pairs = {} tested + {} skipped ({}); \
         {:.1}% of pairs never examined\n",
        ist.pairs_total,
        ist.pairs_tested,
        ist.pairs_skipped,
        if ist.pairs_closed() { "closed" } else { "OPEN" },
        100.0 * ist.pairs_skipped as f64 / (ist.pairs_total.max(1)) as f64,
    ));
    let oist = &oracle.server.interest;
    s.push_str(&format!(
        "oracle: {} replies re-scanned, {} mismatches; \
         world hash {} (sweep {}), {} replies (sweep {})\n",
        oist.oracle_checked,
        oist.oracle_mismatches,
        oracle.world_hash,
        sweep.world_hash,
        oracle.server.merged().replies,
        sweep.server.merged().replies,
    ));
    s.push_str(&format!(
        "\nThe scan pays {} distance tests per frame per viewer; the sweep\n\
         disposes of the overwhelming majority of pairs with two sorted\n\
         merges per axis and hands build_reply a precomputed set. The\n\
         oracle run re-scans every reply off the clock and found {}\n\
         divergences: the sweep is the scan, just cheaper.\n",
        "V x E", oist.oracle_mismatches,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE's acceptance bar at CI scale: the sweep clears 1.2x
    /// the scan's aggregate response rate on the saturated world, its
    /// pair accounting closes, and the shadow oracle finds zero
    /// mismatches while reproducing the sweep run exactly.
    #[test]
    fn sweep_outpaces_the_scan_under_saturation() {
        let opts = SweepOpts {
            duration_secs: 4.0,
            ..SweepOpts::default()
        };
        let scan = run_at(InterestMode::Scan, &opts);
        let sweep = run_at(InterestMode::Sweep, &opts);
        assert_eq!(scan.connected, PLAYERS);
        assert_eq!(sweep.connected, PLAYERS);
        // Scan mode never touches the matcher.
        assert_eq!(scan.server.interest.frames, 0, "{:?}", scan.server.interest);
        // Sweep accounting closes and the broad phase actually prunes.
        let ist = &sweep.server.interest;
        assert!(ist.frames > 0);
        assert!(ist.pairs_closed(), "{ist:?}");
        assert!(ist.pairs_skipped > ist.pairs_tested, "no pruning: {ist:?}");
        let ratio = sweep.response_rate() / scan.response_rate().max(1e-9);
        assert!(
            ratio >= 1.2,
            "response rate only {:.2}x scan ({} -> {})",
            ratio,
            scan.response_rate(),
            sweep.response_rate()
        );
    }

    /// The oracle run executes the scan uncharged inside the sweep
    /// schedule: it must reproduce the sweep run bit for bit and catch
    /// zero divergences.
    #[test]
    fn oracle_confirms_the_sweep_is_the_scan() {
        let opts = SweepOpts {
            duration_secs: 2.0,
            ..SweepOpts::default()
        };
        let sweep = run_at(InterestMode::Sweep, &opts);
        let oracle = run_at(InterestMode::SweepOracle, &opts);
        let oist = &oracle.server.interest;
        assert!(oist.oracle_checked > 0, "{oist:?}");
        assert_eq!(oist.oracle_mismatches, 0, "{oist:?}");
        // Schedule-identical: the shadow scan costs no virtual time.
        assert_eq!(oracle.world_hash, sweep.world_hash);
        assert_eq!(
            oracle.server.merged().replies,
            sweep.server.merged().replies
        );
        assert_eq!(oracle.response.received, sweep.response.received);
    }

    #[test]
    fn interest_runs_are_deterministic() {
        let opts = SweepOpts {
            duration_secs: 2.0,
            ..SweepOpts::default()
        };
        let a = run_at(InterestMode::Sweep, &opts);
        let b = run_at(InterestMode::Sweep, &opts);
        assert_eq!(a.world_hash, b.world_hash);
        assert_eq!(a.response.received, b.response.received);
        assert_eq!(a.server.interest, b.server.interest);
    }
}
