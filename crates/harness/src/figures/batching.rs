//! Request batching — the improvement the paper proposes but leaves as
//! future work (§5.2): "the frame master thread can wait for a period
//! of time before starting the frame", so requests that are in flight
//! join the frame instead of missing it and waiting a whole frame.
//!
//! This module implements and evaluates it: a sweep over batching
//! windows at a fixed (near-saturation) load, reporting inter-frame
//! wait, response rate and response time.

use parquake_bsp::mapgen::MapGenConfig;
use parquake_metrics::report::{f, numeric_table};
use parquake_metrics::Bucket;
use parquake_server::{LockPolicy, ServerKind};

use crate::experiment::{Experiment, ExperimentConfig};
use crate::figures::common::SweepOpts;

/// Batching windows swept (milliseconds).
pub const WINDOWS_MS: [u64; 5] = [0, 2, 5, 10, 15];

/// Run the batching study.
pub fn run(opts: &SweepOpts) -> String {
    let players = if opts.players.contains(&144) {
        144
    } else {
        *opts.players.last().unwrap_or(&144)
    };
    let mut rows = Vec::new();
    for window_ms in WINDOWS_MS {
        let out = Experiment::new(ExperimentConfig {
            players,
            server: ServerKind::Parallel {
                threads: 8,
                locking: LockPolicy::Optimized,
            },
            map: MapGenConfig::eval_arena(opts.seed),
            duration_ns: (opts.duration_secs * 1e9) as u64,
            frame_batch_ns: window_ms * 1_000_000,
            checking: false,
            ..ExperimentConfig::default()
        })
        .run();
        let bd = out.server.merged().breakdown;
        let fs = &out.server.frames;
        let parts = if fs.frames > 0 {
            fs.participants_sum as f64 / fs.frames as f64
        } else {
            0.0
        };
        rows.push(vec![
            format!("{window_ms} ms"),
            f(out.response_rate(), 0),
            f(out.avg_response_ms(), 1),
            f(bd.fraction_non_idle(Bucket::InterWait) * 100.0, 1),
            f(bd.fraction_non_idle(Bucket::IntraWait) * 100.0, 1),
            f(parts, 2),
            out.server.frame_count.to_string(),
        ]);
    }
    let mut s =
        format!("== Request batching (paper 5.2 future work; 8 threads, {players} players) ==\n\n");
    s.push_str(&numeric_table(
        &[
            "batch window",
            "replies/s",
            "resp-ms",
            "interwait%ni",
            "intrawait%ni",
            "participants/frame",
            "frames",
        ],
        &rows,
    ));
    s.push_str(
        "\nLarger windows gather more threads per frame (participants\n\
         approach the thread count and intra-frame waits shrink), but\n\
         joiners spend the window parked at the world gate — accounted\n\
         as inter-frame wait — and response time grows by roughly the\n\
         window. Batching trades latency for synchrony; it does not\n\
         raise peak throughput. This is the quantified version of the\n\
         trade-off the paper anticipated when it deferred the idea.\n",
    );
    s
}
