//! Figure 4: overhead of the parallel server.
//!
//! Sequential vs single-thread parallel (baseline locking) at 64, 96
//! and 128 players: (a) execution-time breakdowns, (b) total response
//! rate, (c) average response time. The paper finds the 1-thread
//! parallel overhead under 5% at 64 players, rising to ~15% at 128
//! (locking is performed in recursive procedures and regions must be
//! determined), with negligible impact on response rate and time.

use parquake_server::{LockPolicy, ServerKind};

use crate::figures::common::{kind_label, render_outcomes, run_config, SweepOpts};

/// Player counts used by the paper for this figure.
pub fn default_players() -> Vec<u32> {
    vec![64, 96, 128]
}

/// Run the sweep and render the figure.
pub fn run(opts: &SweepOpts) -> String {
    let players = if opts.players == SweepOpts::default().players {
        default_players()
    } else {
        opts.players.clone()
    };
    let mut rows = Vec::new();
    for &p in &players {
        for kind in [
            ServerKind::Sequential,
            ServerKind::Parallel {
                threads: 1,
                locking: LockPolicy::Baseline,
            },
        ] {
            let out = run_config(p, kind, opts);
            rows.push((format!("{} {p}p", kind_label(kind)), out));
        }
    }
    let mut s = render_outcomes("Figure 4: overhead of the parallel server", &rows);

    // Headline comparison: per-player-count overhead of the parallel
    // version (workload time, excluding idle/waits).
    s.push_str("single-thread parallel overhead vs sequential (workload time):\n");
    for chunk in rows.chunks(2) {
        if let [(seq_label, seq), (_, par)] = chunk {
            let seq_w = seq.server.merged().breakdown.workload() as f64;
            let par_w = par.server.merged().breakdown.workload() as f64;
            if seq_w > 0.0 {
                s.push_str(&format!(
                    "  {:>10}: {:+.1}%\n",
                    seq_label.replace("seq ", ""),
                    (par_w / seq_w - 1.0) * 100.0
                ));
            }
        }
    }
    s
}
