//! Figure 7: locking overhead and contention analysis (paper §5.1).
//!
//! * (a) share of lock time due to parent vs leaf areanode locking per
//!   thread count — leaves dominate and their share grows with threads
//!   and players;
//! * (b) average percentage of *distinct* leaf areanodes locked per
//!   request as the total areanode count grows from 3 to 63 — a rapid
//!   drop that flattens between 31 and 63 nodes, with 40%/30% of leaf
//!   lock events being re-locks at 31/63 nodes;
//! * (c) average percentage of leaves locked by at least two threads
//!   per frame — rising steeply with players, with a knee between 128
//!   and 144 and near-100% at saturation.

use parquake_metrics::report::{f, numeric_table};
use parquake_server::{LockPolicy, ServerKind};

use crate::figures::common::{kind_label, run_config, SweepOpts};

/// Figure 7(a): parent vs leaf lock-time shares.
pub fn run_a(opts: &SweepOpts) -> String {
    let mut rows = Vec::new();
    for threads in [2u32, 4, 8] {
        for &p in &opts.players {
            let kind = ServerKind::Parallel {
                threads,
                locking: LockPolicy::Baseline,
            };
            let out = run_config(p, kind, opts);
            let m = out.server.merged();
            rows.push(vec![
                format!("{} {p}p", kind_label(kind)),
                f(m.lock.leaf_share() * 100.0, 1),
                f((1.0 - m.lock.leaf_share()) * 100.0, 1),
                m.lock.leaf_ops.to_string(),
                m.lock.parent_ops.to_string(),
            ]);
        }
    }
    let mut s =
        String::from("== Figure 7a: lock time share, leaf vs parent areanode locking ==\n\n");
    s.push_str(&numeric_table(
        &[
            "configuration",
            "leaf%",
            "parent%",
            "leaf-ops",
            "parent-ops",
        ],
        &rows,
    ));
    s
}

/// Figure 7(b): distinct leaves locked per request vs areanode count.
pub fn run_b(opts: &SweepOpts) -> String {
    let players = *opts.players.iter().min().unwrap_or(&64);
    let mut rows = Vec::new();
    for depth in 1..=5u32 {
        let node_count = (1u32 << (depth + 1)) - 1;
        let kind = ServerKind::Parallel {
            threads: 4,
            locking: LockPolicy::Baseline,
        };
        let sweep = SweepOpts {
            depth,
            ..opts.clone()
        };
        let out = run_config(players, kind, &sweep);
        let m = out.server.merged();
        rows.push(vec![
            format!("{node_count} areanodes ({} leaves)", 1 << depth),
            f(m.lock.avg_distinct_leaf_percent(), 1),
            f(m.lock.avg_distinct_leaves(), 2),
            f(m.lock.relock_fraction() * 100.0, 1),
        ]);
    }
    let mut s = format!(
        "== Figure 7b: distinct leaf areanodes locked per request ({players} players, 4 threads) ==\n\n"
    );
    s.push_str(&numeric_table(
        &["tree size", "leaves/req %", "leaves/req", "relock%"],
        &rows,
    ));
    s
}

/// Figure 7(c): leaves locked by ≥ 2 threads per frame.
pub fn run_c(opts: &SweepOpts) -> String {
    let mut rows = Vec::new();
    for threads in [2u32, 4, 8] {
        for &p in &opts.players {
            let kind = ServerKind::Parallel {
                threads,
                locking: LockPolicy::Baseline,
            };
            let out = run_config(p, kind, opts);
            rows.push(vec![
                format!("{} {p}p", kind_label(kind)),
                f(out.server.frames.avg_shared_leaf_percent(), 1),
                f(out.server.frames.avg_touched_leaf_percent(), 1),
            ]);
        }
    }
    let mut s = String::from(
        "== Figure 7c: leaf areanodes locked by at least two threads per frame ==\n\n",
    );
    s.push_str(&numeric_table(
        &["configuration", "shared-leaves%", "touched-leaves%"],
        &rows,
    ));
    s
}
