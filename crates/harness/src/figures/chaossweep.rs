//! Chaossweep figure (extension): client-side prediction under
//! combined WAN fault profiles.
//!
//! Every other fault figure turns one knob; real WANs turn them all at
//! once. This sweep composes the full fault vocabulary — Gilbert–
//! Elliott bursty loss, bounded per-copy jitter (which reorders),
//! floored delay, one-way asymmetric downlink lag, a 1%-per-frame
//! supervised crash lottery, and an elastic population ramp — and runs
//! each profile twice: once with legacy clients and once with
//! predicting clients (input ring + server reconciliation).
//!
//! The comparison metric is the *effective response rate*: how many
//! inputs per second a client acted on. A legacy client acts when the
//! server's reply survives the round trip, so its effective rate is
//! the received-reply rate. A predicting client acts instantly on
//! every input and only loses the ones reconciliation later
//! invalidates, so its effective rate is
//! [`parquake_metrics::PredictionStats::effective_inputs`] per second.
//! The divergence oracle must stay at zero throughout: under every
//! profile, whenever a client has nothing in flight and the slot is
//! unperturbed, its predicted state equals the server's bit for bit.
//!
//! Faults are scoped to the WAN edge ([`VirtualSmpConfig::
//! fault_wan_only`]): bot sockets are marked, directory control and
//! migration capsules stay lossless — mirroring where a real gateway
//! injects.

use parquake_arena::AdmissionPolicy;
use parquake_bots::SwarmRamp;
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::fault::{FaultConfig, FaultDir};
use parquake_fabric::{FabricKind, Nanos, VirtualSmpConfig};
use parquake_metrics::report::{f, numeric_table};

use crate::arena_experiment::{ArenaExperiment, ArenaExperimentConfig, ArenaOutcome};
use crate::figures::common::SweepOpts;

/// The figure's machine shape: 4 supervised arenas, 8 slots each, a
/// 2-worker pool, 24 players (the crashsweep shape, so the crash
/// lottery's cost is comparable).
pub const ARENAS: u32 = 4;
pub const SLOTS: u16 = 8;
pub const PLAYERS: u32 = 24;
pub const WORKERS: u32 = 2;
pub const CHECKPOINT_INTERVAL: u32 = 64;

/// Network lottery seed (decorrelated from the crash lottery's).
pub const CHAOS_SEED: u64 = 0xC4A0_55EE;

/// One combined WAN profile.
#[derive(Clone, Copy, Debug)]
pub struct ChaosProfile {
    pub name: &'static str,
    /// Gilbert–Elliott bursty loss rate (0 = off) and mean burst
    /// length in datagrams.
    pub burst_loss: f32,
    pub burst_len: f32,
    /// Per-copy jitter bound in ms (0 = off); jitter reorders.
    pub jitter_ms: u64,
    /// Delay lottery: probability and floored bounds in ms.
    pub delay: f32,
    pub min_delay_ms: u64,
    pub max_delay_ms: u64,
    /// Extra one-way (server→client) lag in ms — asymmetric downlink.
    pub oneway_ms: u64,
    /// Supervised per-frame panic lottery (0 = no crashes).
    pub crash_rate: f32,
    /// Run the elastic population ramp (join/leave churn).
    pub ramp: bool,
}

/// The swept profiles, mildest to harshest. The last entry is "the
/// internet on a bad day": every knob at once.
pub const PROFILES: [ChaosProfile; 4] = [
    ChaosProfile {
        name: "clean",
        burst_loss: 0.0,
        burst_len: 1.0,
        jitter_ms: 0,
        delay: 0.0,
        min_delay_ms: 0,
        max_delay_ms: 0,
        oneway_ms: 0,
        crash_rate: 0.0,
        ramp: false,
    },
    ChaosProfile {
        name: "bursty-loss",
        burst_loss: 0.05,
        burst_len: 4.0,
        jitter_ms: 0,
        delay: 0.0,
        min_delay_ms: 0,
        max_delay_ms: 0,
        oneway_ms: 0,
        crash_rate: 0.0,
        ramp: false,
    },
    ChaosProfile {
        name: "jitter-delay",
        burst_loss: 0.0,
        burst_len: 1.0,
        jitter_ms: 20,
        delay: 1.0,
        min_delay_ms: 20,
        max_delay_ms: 60,
        oneway_ms: 30,
        crash_rate: 0.0,
        ramp: false,
    },
    ChaosProfile {
        name: "full-wan",
        burst_loss: 0.12,
        burst_len: 4.0,
        jitter_ms: 20,
        delay: 1.0,
        min_delay_ms: 20,
        max_delay_ms: 60,
        oneway_ms: 30,
        crash_rate: 0.01,
        ramp: true,
    },
];

/// The harshest profile (the acceptance bar's subject).
pub fn harshest() -> ChaosProfile {
    PROFILES[PROFILES.len() - 1]
}

impl ChaosProfile {
    /// The WAN-edge datagram lottery for this profile (`None` = clean
    /// network).
    pub fn net_fault(&self, seed: u64) -> Option<FaultConfig> {
        let quiet = self.burst_loss == 0.0
            && self.jitter_ms == 0
            && self.delay == 0.0
            && self.oneway_ms == 0;
        (!quiet).then(|| FaultConfig {
            burst_loss: self.burst_loss,
            burst_len: self.burst_len,
            jitter_ns: self.jitter_ms * 1_000_000,
            delay: self.delay,
            min_delay_ns: self.min_delay_ms * 1_000_000,
            max_delay_ns: self.max_delay_ms * 1_000_000,
            oneway_delay_ns: self.oneway_ms * 1_000_000,
            oneway_dir: FaultDir::ServerToClient,
            seed: seed ^ CHAOS_SEED,
            ..FaultConfig::none()
        })
    }
}

/// Run one profile with prediction on or off.
pub fn run_at(profile: &ChaosProfile, predict: bool, opts: &SweepOpts) -> ArenaOutcome {
    let duration_ns = (opts.duration_secs * 1e9) as Nanos;
    let cfg = ArenaExperimentConfig {
        players: PLAYERS,
        arenas: ARENAS,
        workers: WORKERS,
        policy: AdmissionPolicy::Explicit,
        map: MapGenConfig::small_arena(opts.seed),
        areanode_depth: opts.depth,
        duration_ns,
        slots_per_arena: Some(SLOTS),
        supervision: true,
        checkpoint_interval: CHECKPOINT_INTERVAL,
        frame_faults: (profile.crash_rate > 0.0).then(|| FaultConfig {
            panic_per_frame: profile.crash_rate,
            seed: opts.seed ^ 0xC4A5_5EED,
            ..FaultConfig::none()
        }),
        fabric: FabricKind::VirtualSmp(VirtualSmpConfig {
            fault: profile.net_fault(opts.seed),
            fault_wan_only: true,
            ..Default::default()
        }),
        // The elastic ramp: join staggered over the first 30%, hold,
        // drain over the next 20% — churn on top of the chaos, with
        // headroom for the director to spawn under pressure.
        ramp: profile.ramp.then_some(SwarmRamp::UpDown {
            ramp_up_ns: duration_ns * 3 / 10,
            hold_ns: duration_ns * 4 / 10,
            ramp_down_ns: duration_ns * 2 / 10,
        }),
        max_arenas: if profile.ramp { ARENAS + 2 } else { 0 },
        linger_ns: duration_ns / 20,
        // Lossy runs exercise the server lifecycle too: silent slots
        // are reclaimed after 2 virtual seconds.
        client_timeout_ns: 2_000_000_000,
        predict,
        checking: false, // measured run: checkers off, like release Quake
        ..ArenaExperimentConfig::default()
    };
    ArenaExperiment::new(cfg).run()
}

/// Inputs per second the clients acted on: received replies for legacy
/// clients, never-invalidated predictions for predicting ones.
pub fn effective_response_rate(o: &ArenaOutcome, predict: bool) -> f64 {
    if predict {
        o.prediction.effective_inputs() as f64 / (o.duration_ns as f64 / 1e9)
    } else {
        o.response_rate()
    }
}

/// Run the sweep and render the report.
pub fn run(opts: &SweepOpts) -> String {
    let mut s = format!(
        "== Chaossweep (extension): {PLAYERS} players over {ARENAS} supervised \
         arenas, {WORKERS}-worker pool, combined WAN profiles, prediction \
         off vs on ==\n\n"
    );

    let mut rows = Vec::new();
    let mut harsh_rates = (0.0f64, 0.0f64);
    for profile in &PROFILES {
        for predict in [false, true] {
            let o = run_at(profile, predict, opts);
            let eff = effective_response_rate(&o, predict);
            if profile.name == harshest().name {
                if predict {
                    harsh_rates.1 = eff;
                } else {
                    harsh_rates.0 = eff;
                }
            }
            let p = &o.prediction;
            rows.push(vec![
                profile.name.to_string(),
                if predict { "on" } else { "off" }.to_string(),
                f(o.response_rate(), 0),
                f(eff, 0),
                if predict {
                    format!("{:.2}%", p.misprediction_rate() * 100.0)
                } else {
                    "-".into()
                },
                if predict {
                    format!("{}/{}", p.depth.percentile(0.50), p.depth.percentile(0.95))
                } else {
                    "-".into()
                },
                if predict {
                    format!("{}/{}", p.oracle_checks, p.oracle_mismatches)
                } else {
                    "-".into()
                },
                o.supervisor.panics_caught.to_string(),
                o.connected.to_string(),
            ]);
        }
    }
    s.push_str(&numeric_table(
        &[
            "profile",
            "predict",
            "replies/s",
            "effective/s",
            "mispred",
            "depth p50/p95",
            "oracle ok/bad",
            "panics",
            "connected",
        ],
        &rows,
    ));
    s.push('\n');

    if harsh_rates.0 > 0.0 {
        s.push_str(&format!(
            "harshest profile ({}): prediction-on effective rate {:.0}/s vs \
             prediction-off {:.0}/s — {:.2}x (acceptance bar: >= 1.2x)\n",
            harshest().name,
            harsh_rates.1,
            harsh_rates.0,
            harsh_rates.1 / harsh_rates.0
        ));
    }
    s.push_str(
        "\nA legacy client acts on an input only when the server's reply\n\
         survives bursty loss, jitter, asymmetric delay, and crash-shed\n\
         frames; a predicting client acts instantly and loses only the\n\
         inputs reconciliation later invalidates. The oracle column is a\n\
         correctness gate, not a tuning metric: with nothing in flight and\n\
         an unperturbed slot, prediction must equal the server bit for bit\n\
         under every profile.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci_opts() -> SweepOpts {
        SweepOpts {
            duration_secs: 4.0,
            ..SweepOpts::default()
        }
    }

    /// The ISSUE's acceptance bar: under the harshest combined profile
    /// (bursty loss + jitter + floored delay + one-way lag + 1%/frame
    /// crash lottery + elastic ramp), prediction-on retains at least
    /// 1.2x the effective-response rate of prediction-off, with zero
    /// divergence-oracle mismatches.
    #[test]
    fn prediction_retains_effective_rate_under_harshest_profile() {
        let opts = ci_opts();
        let profile = harshest();
        let off = run_at(&profile, false, &opts);
        let on = run_at(&profile, true, &opts);

        assert!(off.supervisor.panics_caught >= 1, "lottery never fired");
        assert!(on.supervisor.panics_caught >= 1, "lottery never fired");
        assert!(
            on.prediction.oracle_checks > 0,
            "oracle never armed: {:?}",
            on.prediction
        );
        assert_eq!(
            on.prediction.oracle_mismatches, 0,
            "prediction diverged from the server: {:?}",
            on.prediction
        );
        assert!(
            on.prediction.closed(on.predict_in_flight),
            "prediction ledger must close: {:?} + in flight {}",
            on.prediction,
            on.predict_in_flight
        );

        let rate_off = effective_response_rate(&off, false);
        let rate_on = effective_response_rate(&on, true);
        assert!(rate_off > 0.0, "legacy clients starved entirely");
        assert!(
            rate_on >= 1.2 * rate_off,
            "prediction-on effective rate {:.0}/s < 1.2x prediction-off {:.0}/s ({:.2}x)",
            rate_on,
            rate_off,
            rate_on / rate_off
        );
    }

    /// Under the clean profile both rows behave: the oracle is armed
    /// and silent, and prediction costs nothing measurable in replies.
    #[test]
    fn clean_profile_oracle_is_armed_and_silent() {
        let o = run_at(&PROFILES[0], true, &ci_opts());
        assert_eq!(o.connected, PLAYERS);
        assert!(o.prediction.oracle_checks > 0, "{:?}", o.prediction);
        assert_eq!(o.prediction.oracle_mismatches, 0, "{:?}", o.prediction);
        assert!(o.prediction.closed(o.predict_in_flight));
        assert!(o.supervisor.panics_caught == 0);
    }

    /// The whole stack — bursty loss, jitter, delay floor, one-way
    /// lag, crash lottery, elastic ramp, prediction — replays
    /// identically from its seeds.
    #[test]
    fn chaossweep_runs_are_deterministic() {
        let opts = ci_opts();
        let profile = harshest();
        let a = run_at(&profile, true, &opts);
        let b = run_at(&profile, true, &opts);
        assert_eq!(a.world_hashes, b.world_hashes);
        assert_eq!(a.aggregate.replies, b.aggregate.replies);
        assert_eq!(a.supervisor.panics_caught, b.supervisor.panics_caught);
        assert_eq!(a.prediction.predicted, b.prediction.predicted);
        assert_eq!(a.prediction.mispredictions, b.prediction.mispredictions);
        assert_eq!(a.prediction.oracle_checks, b.prediction.oracle_checks);
        assert_eq!(a.prediction.depth.counts, b.prediction.depth.counts);
        assert_eq!(a.predict_in_flight, b.predict_in_flight);
    }
}
