//! Elasticity figure (extension): an arena directory follows a
//! population ramp in both directions.
//!
//! Bots ramp up past the boot fleet's capacity, hold, then drain to
//! zero. With lifecycle-truthful occupancy the director spawns arenas
//! under admission pressure on the way up and reaps them after the
//! linger window on the way down — and because every departure (front
//! door or server-side) reaches the ledger, nobody is rejected while
//! the ceiling has headroom and the population identity
//! `placed == departed + resident` closes over the whole run.

use parquake_arena::AdmissionPolicy;
use parquake_bots::SwarmRamp;
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::Nanos;
use parquake_metrics::report::numeric_table;

use crate::arena_experiment::{ArenaExperiment, ArenaExperimentConfig, ArenaOutcome};
use crate::figures::common::SweepOpts;

/// The figure's machine shape: boot 1 arena, ceiling 4, 12 slots each,
/// 40 ramped players on a 2-worker pool.
pub const BOOT_ARENAS: u32 = 1;
pub const MAX_ARENAS: u32 = 4;
pub const SLOTS: u16 = 12;
pub const PLAYERS: u32 = 40;
pub const WORKERS: u32 = 2;

/// Run the ramped elastic configuration. The ramp is proportional to
/// the run length: up over the first 30%, hold 40%, down 20%, with a
/// 10% quiet tail so the last reap lands inside the run.
pub fn run_ramp(opts: &SweepOpts) -> ArenaOutcome {
    let duration_ns = (opts.duration_secs * 1e9) as Nanos;
    let cfg = ArenaExperimentConfig {
        players: PLAYERS,
        arenas: BOOT_ARENAS,
        workers: WORKERS,
        policy: AdmissionPolicy::FillFirst,
        map: MapGenConfig::small_arena(opts.seed),
        areanode_depth: opts.depth,
        duration_ns,
        max_arenas: MAX_ARENAS,
        linger_ns: duration_ns / 20,
        slots_per_arena: Some(SLOTS),
        ramp: Some(SwarmRamp::UpDown {
            ramp_up_ns: duration_ns * 3 / 10,
            hold_ns: duration_ns * 4 / 10,
            ramp_down_ns: duration_ns * 2 / 10,
        }),
        checking: false, // measured run: checkers off, like release Quake
        ..ArenaExperimentConfig::default()
    };
    ArenaExperiment::new(cfg).run()
}

/// Run the ramp and render the report.
pub fn run(opts: &SweepOpts) -> String {
    let o = run_ramp(opts);
    let e = &o.elastic;

    let mut s = format!(
        "== Elasticity (extension): {PLAYERS} players ramped over a \
         boot-{BOOT_ARENAS}/max-{MAX_ARENAS} directory, {SLOTS} slots each ==\n\n"
    );

    // Live-arena count sampled over the run: the shape should follow
    // the ramp up and back down.
    let buckets = 10u64;
    let rows: Vec<Vec<String>> = (0..=buckets)
        .map(|b| {
            let at = o.duration_ns * b / buckets;
            vec![format!("{:.1}", at as f64 / 1e9), e.live_at(at).to_string()]
        })
        .collect();
    s.push_str(&numeric_table(&["t (s)", "live arenas"], &rows));
    s.push('\n');

    s.push_str(&format!(
        "spawned {} reaped {} (peak {} live, {} at end); \
         linger {} ms\n",
        e.spawned,
        e.reaped,
        e.peak_live,
        e.live_at_end,
        o.duration_ns / 20 / 1_000_000,
    ));
    for ev in &e.events {
        s.push_str(&format!(
            "  t={:>6.2}s arena{} {:?} -> {} live\n",
            ev.at as f64 / 1e9,
            ev.arena,
            ev.kind,
            ev.live
        ));
    }

    let adm = &o.admission;
    s.push_str(&format!(
        "\npopulation identity: placed {} == departed {} + resident {} ({}); \
         rejected_full {}\n",
        adm.placed,
        adm.departed,
        adm.resident,
        if adm.population_closed() {
            "closed"
        } else {
            "OPEN"
        },
        adm.rejected_full,
    ));
    s.push_str(&format!(
        "lifecycle notices: {} connected, {} disconnected, {} reclaimed, \
         {} stale; book evictions {}\n",
        adm.notice_connected,
        adm.notice_disconnected,
        adm.notice_reclaimed,
        adm.notice_stale,
        adm.book_evicted,
    ));
    s.push_str(&format!(
        "\nThe live-arena count follows the population ramp in both\n\
         directions: admission pressure spawns arenas on the way up, and\n\
         empty arenas are reaped one linger window after the drain. With\n\
         lifecycle notices reconciling the books, no connect was rejected\n\
         while the {MAX_ARENAS}-arena ceiling had headroom.\n"
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE's acceptance bar at CI scale: the live-arena count
    /// follows the ramp both directions and the identity closes.
    #[test]
    fn live_arena_count_follows_the_ramp() {
        let opts = SweepOpts {
            duration_secs: 4.0,
            ..SweepOpts::default()
        };
        let o = run_ramp(&opts);
        let e = &o.elastic;
        assert!(e.spawned >= 1, "{e:?}");
        assert!(e.reaped >= 1, "{e:?}");
        assert!(e.peak_live >= 2, "{e:?}");
        assert_eq!(e.live_at_end, BOOT_ARENAS, "{e:?}");
        // Up: more arenas live mid-hold than at the start. Down: back
        // to the boot fleet by the end of the run.
        let mid_hold = o.duration_ns / 2;
        assert!(e.live_at(mid_hold) > BOOT_ARENAS, "{e:?}");
        assert!(e.live_at(o.duration_ns) < e.live_at(mid_hold), "{e:?}");
        // Truthful occupancy: nobody rejected below the ceiling, books
        // balanced at the end.
        assert_eq!(o.admission.rejected_full, 0, "{:?}", o.admission);
        assert!(o.admission.population_closed(), "{:?}", o.admission);
        assert_eq!(o.connected, PLAYERS);
    }

    #[test]
    fn ramp_runs_are_deterministic() {
        let opts = SweepOpts {
            duration_secs: 2.0,
            ..SweepOpts::default()
        };
        let a = run_ramp(&opts);
        let b = run_ramp(&opts);
        assert_eq!(a.world_hashes, b.world_hashes);
        assert_eq!(a.aggregate.replies, b.aggregate.replies);
        assert_eq!(a.elastic.events.len(), b.elastic.events.len());
    }
}
