//! Figure 5: parallel server performance (baseline locking).
//!
//! 2/4/8 threads across 64–160 players: (a) breakdowns, (b) response
//! rate, (c) response time. The paper's findings: saturation at 128,
//! 144 and 160 players for 2, 4 and 8 threads; receive and reply scale;
//! lock time grows from ~2% to ~35%; inter-/intra-frame waits reach
//! 40%+; at 8 threads lock+wait dominate (up to 70%).

use parquake_server::{LockPolicy, ServerKind};

use crate::experiment::Outcome;
use crate::figures::common::{
    kind_label, render_lock_stats, render_outcomes, run_config, SweepOpts,
};

/// The thread counts of the figure.
pub const THREAD_COUNTS: [u32; 3] = [2, 4, 8];

/// Run the full sweep for a given lock policy; returns labelled rows.
pub fn sweep(policy: LockPolicy, opts: &SweepOpts) -> Vec<(String, Outcome)> {
    let mut rows = Vec::new();
    for &threads in &THREAD_COUNTS {
        for &p in &opts.players {
            let kind = ServerKind::Parallel {
                threads,
                locking: policy,
            };
            let out = run_config(p, kind, opts);
            rows.push((format!("{} {p}p", kind_label(kind)), out));
        }
    }
    rows
}

/// Run the sweep and render the figure.
pub fn run(opts: &SweepOpts) -> String {
    let rows = sweep(LockPolicy::Baseline, opts);
    let mut s = render_outcomes(
        "Figure 5: parallel server performance (baseline locking)",
        &rows,
    );
    s.push_str("lock statistics:\n");
    s.push_str(&render_lock_stats(&rows));
    s
}
