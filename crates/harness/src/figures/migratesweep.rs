//! Migration figure (extension): live handoffs turn a skewed fleet
//! back into a level one.
//!
//! Every bot explicitly requests arena 0, so a 4-arena fleet boots
//! with the whole population piled into one world while three sit
//! idle — the pathological shape a static placement policy can reach
//! but never leave. With live migration on, the director notices the
//! occupancy spread, fences one hot slot per tick, hands it to the
//! coldest open arena, and re-acks the client into its new home. The
//! figure compares aggregate response rate with migration off
//! (baseline) and on, and checks the handoff invariants: every
//! migrated slot lands world-hash-identical, and the population
//! identity `placed == departed + resident` stays closed across every
//! rebooking.

use parquake_arena::AdmissionPolicy;
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::Nanos;
use parquake_metrics::report::{f, numeric_table};

use crate::arena_experiment::{ArenaExperiment, ArenaExperimentConfig, ArenaOutcome};
use crate::figures::common::SweepOpts;

/// The figure's machine shape: 4 static arenas with enough slots that
/// arena 0 can hold the entire skewed population, 2 workers.
pub const ARENAS: u32 = 4;
pub const SLOTS: u16 = 160;
pub const PLAYERS: u32 = 160;
pub const WORKERS: u32 = 2;
/// Spread threshold for the migration run: rebalance whenever the
/// hottest arena leads the coldest by at least this many clients.
pub const SPREAD: u32 = 4;

/// Run the skewed fleet at one migration setting. `migrate_spread = 0`
/// is the baseline (migration off): everyone grinds in arena 0.
pub fn run_at(migrate_spread: u32, opts: &SweepOpts) -> ArenaOutcome {
    let duration_ns = (opts.duration_secs * 1e9) as Nanos;
    let cfg = ArenaExperimentConfig {
        players: PLAYERS,
        arenas: ARENAS,
        workers: WORKERS,
        policy: AdmissionPolicy::Explicit,
        map: MapGenConfig::small_arena(opts.seed),
        areanode_depth: opts.depth,
        duration_ns,
        slots_per_arena: Some(SLOTS),
        request_arena: Some(0),
        migrate_spread,
        checking: false, // measured run: checkers off, like release Quake
        ..ArenaExperimentConfig::default()
    };
    ArenaExperiment::new(cfg).run()
}

/// Run baseline and migration configurations and render the report.
pub fn run(opts: &SweepOpts) -> String {
    let base = run_at(0, opts);
    let live = run_at(SPREAD, opts);

    let mut s = format!(
        "== Migration (extension): {PLAYERS} players all requesting arena 0 \
         of {ARENAS}, {SLOTS} slots each ==\n\n"
    );

    let row = |label: &str, o: &ArenaOutcome| {
        let mut r = vec![
            label.to_string(),
            o.aggregate.replies.to_string(),
            f(o.response_rate(), 1),
            o.supervisor.migrations.to_string(),
            o.rehomed.to_string(),
        ];
        r.extend(
            o.per_arena
                .iter()
                .map(|a| a.replies.to_string())
                .collect::<Vec<_>>(),
        );
        r
    };
    let mut headers = vec!["run", "replies", "resp/s", "migrated", "rehomed"];
    let arena_cols: Vec<String> = (0..ARENAS).map(|k| format!("a{k}")).collect();
    headers.extend(arena_cols.iter().map(|c| c.as_str()));
    let rows = vec![row("baseline", &base), row("migrate", &live)];
    s.push_str(&numeric_table(&headers, &rows));
    s.push('\n');

    let ratio = live.response_rate() / base.response_rate().max(1e-9);
    s.push_str(&format!(
        "aggregate response rate: {} -> {} resp/s ({:.2}x)\n",
        f(base.response_rate(), 1),
        f(live.response_rate(), 1),
        ratio,
    ));
    s.push_str(&format!(
        "handoffs: {} migrated ({} by drain), {} aborted, {} hash mismatches; \
         {} clients re-homed\n",
        live.supervisor.migrations,
        live.supervisor.drain_migrations,
        live.supervisor.migrate_aborted,
        live.supervisor.migrate_hash_mismatch,
        live.rehomed,
    ));
    for (tag, o) in [("baseline", &base), ("migrate", &live)] {
        let adm = &o.admission;
        s.push_str(&format!(
            "{tag}: population identity placed {} == departed {} + resident {} ({}); \
             {} migrated notices\n",
            adm.placed,
            adm.departed,
            adm.resident,
            if adm.population_closed() {
                "closed"
            } else {
                "OPEN"
            },
            adm.notice_migrated,
        ));
    }
    s.push_str(&format!(
        "\nThe skewed fleet never recovers on its own: with migration off,\n\
         all {PLAYERS} players share one world's frame while three arenas\n\
         idle. Live handoffs level the fleet a slot at a time — each one\n\
         fenced, transferred hash-identical, rebooked, and re-acked — and\n\
         the aggregate response rate recovers as the population spreads\n\
         across all {ARENAS} worlds.\n"
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE's acceptance bar at CI scale: migration recovers at
    /// least 1.5x the skewed baseline's aggregate response rate, every
    /// handoff lands hash-identical, and the books stay closed.
    #[test]
    fn migration_recovers_the_skewed_fleet() {
        let opts = SweepOpts {
            duration_secs: 4.0,
            ..SweepOpts::default()
        };
        let base = run_at(0, &opts);
        let live = run_at(SPREAD, &opts);
        // Baseline really is skewed: nothing migrated, nobody re-homed.
        assert_eq!(base.supervisor.migrations, 0, "{:?}", base.supervisor);
        assert_eq!(base.rehomed, 0);
        assert_eq!(base.connected, PLAYERS);
        // Migration run moved slots and the clients followed.
        assert!(live.supervisor.migrations >= 1, "{:?}", live.supervisor);
        assert!(live.rehomed >= 1, "rehomed {}", live.rehomed);
        assert_eq!(
            live.supervisor.migrate_hash_mismatch, 0,
            "{:?}",
            live.supervisor
        );
        assert_eq!(live.connected, PLAYERS);
        // The books close on both sides of every handoff.
        assert!(base.admission.population_closed(), "{:?}", base.admission);
        assert!(live.admission.population_closed(), "{:?}", live.admission);
        // And the fleet actually recovers throughput.
        let ratio = live.response_rate() / base.response_rate().max(1e-9);
        assert!(
            ratio >= 1.5,
            "response rate only {:.2}x baseline ({} -> {})",
            ratio,
            base.response_rate(),
            live.response_rate()
        );
    }

    #[test]
    fn migration_runs_are_deterministic() {
        let opts = SweepOpts {
            duration_secs: 2.0,
            ..SweepOpts::default()
        };
        let a = run_at(SPREAD, &opts);
        let b = run_at(SPREAD, &opts);
        assert_eq!(a.world_hashes, b.world_hashes);
        assert_eq!(a.aggregate.replies, b.aggregate.replies);
        assert_eq!(a.supervisor.migrations, b.supervisor.migrations);
        assert_eq!(a.rehomed, b.rehomed);
    }
}
