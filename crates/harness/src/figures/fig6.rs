//! Figure 6: performance with optimized locking (paper §4.3).
//!
//! Same sweep as Figure 5 but with expanded/directional locking for
//! long-range interactions. The paper finds lock time cut by more than
//! half in all cases (though still 1–20%), idle rising from 1% to 7%
//! at 8 threads / 160 players, and overall ~25% more supported players
//! than the sequential server.

use parquake_server::LockPolicy;

use crate::figures::common::{render_lock_stats, render_outcomes, SweepOpts};
use crate::figures::fig5;

/// Run the sweep and render the figure.
pub fn run(opts: &SweepOpts) -> String {
    let rows = fig5::sweep(LockPolicy::Optimized, opts);
    let mut s = render_outcomes(
        "Figure 6: parallel server performance (optimized locking)",
        &rows,
    );
    s.push_str("lock statistics:\n");
    s.push_str(&render_lock_stats(&rows));
    s
}
