//! Response rate vs injected datagram loss — an extension beyond the
//! paper's lossless-LAN evaluation.
//!
//! The fault-injection stage ([`parquake_fabric::fault`]) drops a
//! seeded fraction of every datagram in both directions (requests and
//! replies), so a nominal loss rate `p` costs about `1 - (1-p)²` of
//! the response rate before any recovery behaviour. The sweep shows
//! how much of the zero-loss response rate the sequential and parallel
//! servers retain as loss grows, with the client lifecycle (Connect
//! retry/backoff, inactivity reclaim, reply dedup) keeping every bot
//! in the game.

use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::fault::FaultConfig;
use parquake_fabric::{FabricKind, VirtualSmpConfig};
use parquake_metrics::report::{f, numeric_table};
use parquake_server::{LockPolicy, ServerKind};

use crate::experiment::{Experiment, ExperimentConfig, Outcome};
use crate::figures::common::{kind_label, SweepOpts};

/// Loss rates swept (percent).
pub const LOSS_PERCENTS: [u32; 5] = [0, 5, 10, 15, 20];

/// Lottery seed used by the sweep (and the regression test).
pub const LOSS_SEED: u64 = 0x1055_5EED;

/// Run one configuration under seeded loss `p` (0.0–1.0).
pub fn run_loss_config(players: u32, kind: ServerKind, loss: f32, opts: &SweepOpts) -> Outcome {
    let fault = if loss > 0.0 {
        Some(FaultConfig::loss(loss, LOSS_SEED))
    } else {
        None
    };
    let cfg = ExperimentConfig {
        players,
        server: kind,
        map: MapGenConfig::eval_arena(opts.seed),
        areanode_depth: opts.depth,
        duration_ns: (opts.duration_secs * 1e9) as u64,
        fabric: FabricKind::VirtualSmp(VirtualSmpConfig {
            fault,
            ..Default::default()
        }),
        checking: false,
        // Loss runs exercise the server-side lifecycle too: silent
        // slots are reclaimed after 2 virtual seconds.
        client_timeout_ns: 2_000_000_000,
        ..ExperimentConfig::default()
    };
    Experiment::new(cfg).run()
}

/// Run the loss sweep.
pub fn run(opts: &SweepOpts) -> String {
    let players = *opts.players.first().unwrap_or(&64);
    let kinds = [
        ServerKind::Sequential,
        ServerKind::Parallel {
            threads: 4,
            locking: LockPolicy::Optimized,
        },
    ];
    let mut rows = Vec::new();
    for kind in kinds {
        let mut baseline = 0.0f64;
        for pct in LOSS_PERCENTS {
            let out = run_loss_config(players, kind, pct as f32 / 100.0, opts);
            let rate = out.response_rate();
            if pct == 0 {
                baseline = rate;
            }
            let retained = if baseline > 0.0 {
                rate / baseline * 100.0
            } else {
                0.0
            };
            rows.push(vec![
                format!("{} @ {pct}% loss", kind_label(kind)),
                f(rate, 0),
                f(retained, 1),
                f(out.avg_response_ms(), 1),
                out.connected.to_string(),
                out.server.merged().timeouts.to_string(),
            ]);
        }
    }
    let mut s = format!(
        "== Response rate vs injected loss ({players} players, seed {LOSS_SEED:#x}) ==\n\n"
    );
    s.push_str(&numeric_table(
        &[
            "configuration",
            "replies/s",
            "of zero-loss %",
            "resp-ms",
            "connected",
            "timeouts",
        ],
        &rows,
    ));
    s.push_str(
        "\nLoss applies per datagram in both directions, so p%% nominal\n\
         loss bounds the reply stream at about (1-p)^2 of zero-loss.\n\
         Retention above that floor comes from the lifecycle machinery:\n\
         bots retry lost ConnectAcks with backoff, reply sequence\n\
         numbers dedup fault-duplicated datagrams, and the server\n\
         reclaims slots of clients that fall silent, so no player ever\n\
         wedges. Equal seeds replay the sweep bit-identically.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepOpts {
        SweepOpts {
            duration_secs: 3.0,
            players: vec![16],
            ..SweepOpts::default()
        }
    }

    #[test]
    fn loss_run_replays_deterministically() {
        // The whole lossy experiment — drops included — must replay
        // bit-identically from the seed.
        let run = || {
            let out = run_loss_config(
                12,
                ServerKind::Parallel {
                    threads: 4,
                    locking: LockPolicy::Optimized,
                },
                0.10,
                &quick(),
            );
            (out.response.sent, out.response.received, out.world_hash)
        };
        let a = run();
        assert!(a.1 > 0, "no replies under 10% loss: {a:?}");
        assert!(
            a.1 < a.0,
            "loss injected nothing: {} replies for {} moves",
            a.1,
            a.0
        );
        assert_eq!(a, run());
    }

    #[test]
    fn parallel_keeps_80pct_response_rate_at_10pct_loss() {
        // The headline resilience number: at 10% seeded loss with 64
        // players, the parallel server keeps >= 80% of its zero-loss
        // response rate (the no-recovery floor is (0.9)^2 = 81%).
        let opts = SweepOpts {
            duration_secs: 4.0,
            players: vec![64],
            ..SweepOpts::default()
        };
        let kind = ServerKind::Parallel {
            threads: 4,
            locking: LockPolicy::Optimized,
        };
        let base = run_loss_config(64, kind, 0.0, &opts);
        let lossy = run_loss_config(64, kind, 0.10, &opts);
        assert_eq!(lossy.connected, 64, "bots wedged under loss");
        let retention = lossy.response_rate() / base.response_rate();
        assert!(
            retention >= 0.80,
            "kept only {:.1}% of zero-loss response rate ({:.0} vs {:.0} replies/s)",
            retention * 100.0,
            lossy.response_rate(),
            base.response_rate()
        );
    }

    #[test]
    fn no_bot_wedges_under_loss() {
        // Every bot completes the handshake eventually, even when
        // Connect/ConnectAck datagrams are being dropped.
        let out = run_loss_config(
            16,
            ServerKind::Parallel {
                threads: 4,
                locking: LockPolicy::Optimized,
            },
            0.15,
            &quick(),
        );
        assert_eq!(out.connected, 16, "bots wedged in the handshake");
        assert!(out.response.received > 0);
    }
}
