//! Shared sweep configuration and report rendering for the figure
//! reproductions.

use parquake_bsp::mapgen::MapGenConfig;
use parquake_metrics::report::{breakdown_table, f, numeric_table};
use parquake_metrics::Bucket;
use parquake_server::{LockPolicy, ServerKind};

use crate::experiment::{Experiment, ExperimentConfig, Outcome};

/// Options common to every figure sweep.
#[derive(Clone, Debug)]
pub struct SweepOpts {
    /// Measured virtual seconds per configuration.
    pub duration_secs: f64,
    /// Player counts to sweep.
    pub players: Vec<u32>,
    /// Map/workload seed.
    pub seed: u64,
    /// Areanode tree depth (4 = paper default, 31 nodes).
    pub depth: u32,
}

impl Default for SweepOpts {
    fn default() -> SweepOpts {
        SweepOpts {
            duration_secs: 10.0,
            players: vec![64, 96, 128, 144, 160],
            seed: 0x6D_6D_31,
            depth: 4,
        }
    }
}

impl SweepOpts {
    /// Quick variant for smoke runs.
    pub fn quick() -> SweepOpts {
        SweepOpts {
            duration_secs: 4.0,
            players: vec![64, 128, 160],
            ..SweepOpts::default()
        }
    }
}

/// Short label for a server configuration ("seq", "par4-base"…).
pub fn kind_label(kind: ServerKind) -> String {
    match kind {
        ServerKind::Sequential => "seq".to_string(),
        ServerKind::Parallel { threads, locking } => format!(
            "par{threads}-{}",
            match locking {
                LockPolicy::Baseline => "base",
                LockPolicy::Optimized => "opt",
                LockPolicy::OnePass => "1pass",
            }
        ),
    }
}

/// Run one configuration on the paper's evaluation map.
pub fn run_config(players: u32, kind: ServerKind, opts: &SweepOpts) -> Outcome {
    let cfg = ExperimentConfig {
        players,
        server: kind,
        map: MapGenConfig::eval_arena(opts.seed),
        areanode_depth: opts.depth,
        duration_ns: (opts.duration_secs * 1e9) as u64,
        checking: false, // measured runs: checkers off, like release Quake
        ..ExperimentConfig::default()
    };
    Experiment::new(cfg).run()
}

/// Render the standard report block for a list of configurations:
/// response rate/time plus the execution-time breakdown — the textual
/// equivalents of sub-figures (a), (b) and (c).
pub fn render_outcomes(title: &str, rows: &[(String, Outcome)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n\n"));

    // (b)+(c): response rate and time, plus the reply-size
    // distribution (entities per reply: median, tail, cap pressure).
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, o)| {
            let sizes = &o.server.merged().reply_sizes;
            vec![
                label.clone(),
                f(o.response_rate(), 0),
                f(o.avg_response_ms(), 1),
                o.connected.to_string(),
                o.server.frame_count.to_string(),
                sizes.percentile(0.50).to_string(),
                sizes.percentile(0.95).to_string(),
                sizes.max().to_string(),
            ]
        })
        .collect();
    out.push_str(&numeric_table(
        &[
            "configuration",
            "replies/s",
            "resp-ms",
            "connected",
            "frames",
            "ents-p50",
            "ents-p95",
            "ents-max",
        ],
        &table,
    ));
    out.push('\n');

    // (a): execution-time breakdowns.
    let bds: Vec<(String, parquake_metrics::Breakdown)> = rows
        .iter()
        .map(|(label, o)| (label.clone(), o.breakdown()))
        .collect();
    let refs: Vec<(String, &parquake_metrics::Breakdown)> =
        bds.iter().map(|(l, b)| (l.clone(), b)).collect();
    out.push_str(&breakdown_table(&refs));
    out.push('\n');
    out
}

/// Render the lock-statistics block (feeds Figure 7 and §5.1).
pub fn render_lock_stats(rows: &[(String, Outcome)]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, o)| {
            let m = o.server.merged();
            vec![
                label.clone(),
                f(m.breakdown.percent(Bucket::Lock), 1),
                f(m.lock.leaf_share() * 100.0, 1),
                f(100.0 - m.lock.leaf_share() * 100.0, 1),
                f(m.lock.avg_distinct_leaf_percent(), 1),
                f(m.lock.relock_fraction() * 100.0, 1),
                f(o.server.frames.avg_shared_leaf_percent(), 1),
                f(o.server.frames.avg_touched_leaf_percent(), 1),
            ]
        })
        .collect();
    numeric_table(
        &[
            "configuration",
            "lock%",
            "leaf-share%",
            "parent-share%",
            "leaves/req%",
            "relock%",
            "shared-leaves%",
            "touched-leaves%",
        ],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(kind_label(ServerKind::Sequential), "seq");
        assert_eq!(
            kind_label(ServerKind::Parallel {
                threads: 8,
                locking: LockPolicy::Optimized
            }),
            "par8-opt"
        );
    }
}
