//! Batched UDP syscalls and `SO_REUSEPORT` sharding, no libc.
//!
//! The workspace vendors every external dependency as an offline
//! stand-in, so there is no libc crate to lean on for `recvmmsg(2)`,
//! `sendmmsg(2)`, or `setsockopt(SO_REUSEPORT)` — std exposes none of
//! them. On x86-64 Linux this module issues the raw syscalls directly
//! (`core::arch::asm!`); everywhere else, and whenever the one-time
//! [`capability`] probe finds a syscall filtered (seccomp) or absent,
//! the callers fall back to portable one-datagram `std::net` I/O.
//!
//! The contract with the gateway pumps:
//!
//! * [`bind_reuseport`] — bind another UDP socket to an already-bound
//!   port so the kernel spreads inbound flows across shard sockets by
//!   4-tuple hash. Fails cleanly where unsupported; the gateway then
//!   shares one socket between pumps (portable fallback).
//! * [`recv_more`] — after a blocking `recv_from` got one datagram,
//!   drain up to `BATCH - 1` more in a single `recvmmsg` without
//!   blocking. Falls back to returning nothing (the caller's next
//!   blocking read picks them up one at a time).
//! * [`send_batch`] — write a slice of (payload, destination) pairs
//!   with as few `sendmmsg` calls as possible; falls back to a
//!   `send_to` loop.

use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::OnceLock;

use parquake_protocol::MAX_DATAGRAM;

/// Datagrams moved per batched syscall.
pub const BATCH: usize = 16;

/// What the running kernel/sandbox actually lets us do, probed once.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchCapability {
    /// `recvmmsg`/`sendmmsg` are callable (not ENOSYS/seccomp-filtered).
    pub mmsg: bool,
    /// `SO_REUSEPORT` can be set on a fresh UDP socket.
    pub reuseport: bool,
}

static CAPABILITY: OnceLock<BatchCapability> = OnceLock::new();

/// Probe (once) and report the batching/sharding capabilities.
pub fn capability() -> BatchCapability {
    *CAPABILITY.get_or_init(sys::probe)
}

/// Bind a UDP socket to `ip:port` with `SO_REUSEPORT` set, so several
/// shard sockets can share one port. Errors when the platform (or the
/// probe) says no — callers must fall back to socket sharing.
pub fn bind_reuseport(ip: Ipv4Addr, port: u16) -> std::io::Result<UdpSocket> {
    if !capability().reuseport {
        return Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "SO_REUSEPORT unavailable on this platform",
        ));
    }
    sys::bind_reuseport(ip, port)
}

/// Drain up to `max` additional datagrams without blocking, batched in
/// one `recvmmsg`. Call after a blocking read produced a datagram, so
/// a bursty socket costs one syscall per `BATCH` instead of one each.
/// Returns an empty vec when nothing is queued or batching is
/// unavailable (the portable path reads one datagram per wakeup).
pub fn recv_more(sock: &UdpSocket, max: usize) -> Vec<(Vec<u8>, SocketAddr)> {
    if !capability().mmsg {
        return Vec::new();
    }
    sys::recv_more(sock, max.min(BATCH))
}

/// Send every `(payload, dest)` pair, batching with `sendmmsg` where
/// possible. Returns `(datagrams_sent, datagrams_batched)` where
/// `datagrams_batched` counts those that went out via a multi-message
/// syscall (0 on the portable path).
pub fn send_batch(sock: &UdpSocket, msgs: &[(Vec<u8>, SocketAddr)]) -> (u64, u64) {
    if msgs.len() > 1 && capability().mmsg {
        if let Some(sent) = sys::send_batch(sock, msgs) {
            return (sent, sent);
        }
    }
    // Portable one-datagram fallback (also the single-message path).
    let mut sent = 0u64;
    for (payload, dest) in msgs {
        if sock.send_to(payload, *dest).is_ok() {
            sent += 1;
        }
    }
    (sent, 0)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! Raw x86-64 Linux syscalls: the only platform-specific code in
    //! the workspace. Kept tiny and fully behind the runtime probe so
    //! a seccomp filter downgrades to the portable path instead of
    //! breaking the gateway.

    use super::{BatchCapability, BATCH, MAX_DATAGRAM};
    use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
    use std::os::fd::{AsRawFd, FromRawFd};

    const SYS_CLOSE: usize = 3;
    const SYS_SOCKET: usize = 41;
    const SYS_BIND: usize = 49;
    const SYS_SETSOCKOPT: usize = 54;
    const SYS_RECVMMSG: usize = 299;
    const SYS_SENDMMSG: usize = 307;

    const AF_INET: usize = 2;
    const SOCK_DGRAM: usize = 2;
    const SOCK_CLOEXEC: usize = 0x80000;
    const SOL_SOCKET: usize = 1;
    const SO_REUSEPORT: usize = 15;
    const MSG_DONTWAIT: usize = 0x40;
    const EAGAIN: isize = -11;
    const EWOULDBLOCK: isize = EAGAIN;

    /// One raw syscall; negative returns are `-errno`.
    ///
    /// SAFETY: callers pass argument counts/types matching the syscall
    /// number, with any pointers valid for the kernel's access.
    unsafe fn syscall5(n: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// `struct sockaddr_in`, ports and addresses in network byte order.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    impl SockaddrIn {
        fn new(ip: Ipv4Addr, port: u16) -> SockaddrIn {
            SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: port.to_be(),
                sin_addr: u32::from(ip).to_be(),
                sin_zero: [0; 8],
            }
        }

        fn to_addr(self) -> SocketAddr {
            SocketAddr::V4(SocketAddrV4::new(
                Ipv4Addr::from(u32::from_be(self.sin_addr)),
                u16::from_be(self.sin_port),
            ))
        }
    }

    #[repr(C)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    /// `struct msghdr` as laid out by the x86-64 kernel ABI (repr(C)
    /// inserts the same padding after `namelen` and `flags`).
    #[repr(C)]
    struct MsgHdr {
        name: *mut SockaddrIn,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    /// Probe what the kernel/sandbox permits: an `EAGAIN` from an empty
    /// nonblocking `recvmmsg` proves the syscall exists and is allowed;
    /// `ENOSYS`/`EPERM` (seccomp) mean the portable path must carry the
    /// traffic. `SO_REUSEPORT` is probed by actually setting it.
    pub(super) fn probe() -> BatchCapability {
        let mmsg = match UdpSocket::bind("127.0.0.1:0") {
            Ok(sock) => {
                let mut buf = [0u8; 8];
                let mut iov = IoVec {
                    base: buf.as_mut_ptr(),
                    len: buf.len(),
                };
                let mut msg = MMsgHdr {
                    hdr: MsgHdr {
                        name: std::ptr::null_mut(),
                        namelen: 0,
                        iov: &mut iov,
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                };
                // SAFETY: fd is open, msg points at live stack storage.
                let r = unsafe {
                    syscall5(
                        SYS_RECVMMSG,
                        sock.as_raw_fd() as usize,
                        (&mut msg as *mut MMsgHdr) as usize,
                        1,
                        MSG_DONTWAIT,
                        0,
                    )
                };
                r >= 0 || r == EAGAIN || r == EWOULDBLOCK
            }
            Err(_) => false,
        };
        // SAFETY: plain socket/setsockopt/close on a private fd.
        let reuseport = unsafe {
            let fd = syscall5(SYS_SOCKET, AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0, 0, 0);
            if fd < 0 {
                false
            } else {
                let one: u32 = 1;
                let r = syscall5(
                    SYS_SETSOCKOPT,
                    fd as usize,
                    SOL_SOCKET,
                    SO_REUSEPORT,
                    (&one as *const u32) as usize,
                    4,
                );
                syscall5(SYS_CLOSE, fd as usize, 0, 0, 0, 0);
                r == 0
            }
        };
        BatchCapability { mmsg, reuseport }
    }

    pub(super) fn bind_reuseport(ip: Ipv4Addr, port: u16) -> std::io::Result<UdpSocket> {
        let err = |r: isize| std::io::Error::from_raw_os_error(-r as i32);
        // SAFETY: socket/setsockopt/bind with valid pointers; the fd is
        // either handed to UdpSocket (which owns it) or closed on the
        // error paths.
        unsafe {
            let fd = syscall5(SYS_SOCKET, AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0, 0, 0);
            if fd < 0 {
                return Err(err(fd));
            }
            let one: u32 = 1;
            let r = syscall5(
                SYS_SETSOCKOPT,
                fd as usize,
                SOL_SOCKET,
                SO_REUSEPORT,
                (&one as *const u32) as usize,
                4,
            );
            if r < 0 {
                syscall5(SYS_CLOSE, fd as usize, 0, 0, 0, 0);
                return Err(err(r));
            }
            let addr = SockaddrIn::new(ip, port);
            let r = syscall5(
                SYS_BIND,
                fd as usize,
                (&addr as *const SockaddrIn) as usize,
                std::mem::size_of::<SockaddrIn>(),
                0,
                0,
            );
            if r < 0 {
                syscall5(SYS_CLOSE, fd as usize, 0, 0, 0, 0);
                return Err(err(r));
            }
            Ok(UdpSocket::from_raw_fd(fd as i32))
        }
    }

    pub(super) fn recv_more(sock: &UdpSocket, max: usize) -> Vec<(Vec<u8>, SocketAddr)> {
        let n = max.min(BATCH);
        if n == 0 {
            return Vec::new();
        }
        let mut bufs = vec![[0u8; MAX_DATAGRAM]; n];
        let mut names = vec![SockaddrIn::new(Ipv4Addr::UNSPECIFIED, 0); n];
        let mut iovs: Vec<IoVec> = bufs
            .iter_mut()
            .map(|b| IoVec {
                base: b.as_mut_ptr(),
                len: MAX_DATAGRAM,
            })
            .collect();
        let mut msgs: Vec<MMsgHdr> = (0..n)
            .map(|i| MMsgHdr {
                hdr: MsgHdr {
                    name: &mut names[i],
                    namelen: std::mem::size_of::<SockaddrIn>() as u32,
                    iov: &mut iovs[i],
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            })
            .collect();
        // SAFETY: every pointer in msgs targets storage that outlives
        // the call; vlen matches the array length.
        let got = unsafe {
            syscall5(
                SYS_RECVMMSG,
                sock.as_raw_fd() as usize,
                msgs.as_mut_ptr() as usize,
                n,
                MSG_DONTWAIT,
                0,
            )
        };
        if got <= 0 {
            return Vec::new();
        }
        (0..got as usize)
            .map(|i| {
                let len = (msgs[i].len as usize).min(MAX_DATAGRAM);
                (bufs[i][..len].to_vec(), names[i].to_addr())
            })
            .collect()
    }

    /// Batched send; `None` means the syscall path failed outright and
    /// the caller should run the portable loop instead.
    pub(super) fn send_batch(sock: &UdpSocket, msgs: &[(Vec<u8>, SocketAddr)]) -> Option<u64> {
        // Only V4 destinations go through the raw path (loopback
        // gateways are always V4; a stray V6 falls back cleanly).
        if msgs
            .iter()
            .any(|(_, dest)| !matches!(dest, SocketAddr::V4(_)))
        {
            return None;
        }
        let mut names: Vec<SockaddrIn> = msgs
            .iter()
            .map(|(_, dest)| match dest {
                SocketAddr::V4(v4) => SockaddrIn::new(*v4.ip(), v4.port()),
                SocketAddr::V6(_) => unreachable!(),
            })
            .collect();
        let mut iovs: Vec<IoVec> = msgs
            .iter()
            .map(|(payload, _)| IoVec {
                base: payload.as_ptr() as *mut u8,
                len: payload.len(),
            })
            .collect();
        let mut hdrs: Vec<MMsgHdr> = (0..msgs.len())
            .map(|i| MMsgHdr {
                hdr: MsgHdr {
                    name: &mut names[i],
                    namelen: std::mem::size_of::<SockaddrIn>() as u32,
                    iov: &mut iovs[i],
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            })
            .collect();
        let mut sent = 0usize;
        while sent < hdrs.len() {
            // SAFETY: hdrs[sent..] points at live storage; vlen matches.
            let r = unsafe {
                syscall5(
                    SYS_SENDMMSG,
                    sock.as_raw_fd() as usize,
                    hdrs[sent..].as_mut_ptr() as usize,
                    hdrs.len() - sent,
                    0,
                    0,
                )
            };
            if r <= 0 {
                break;
            }
            sent += r as usize;
        }
        Some(sent as u64)
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    //! Portable stand-in: no batching, no reuseport. The public entry
    //! points all degrade to one-datagram std I/O.

    use super::BatchCapability;
    use std::net::{Ipv4Addr, SocketAddr, UdpSocket};

    pub(super) fn probe() -> BatchCapability {
        BatchCapability::default()
    }

    pub(super) fn bind_reuseport(_ip: Ipv4Addr, _port: u16) -> std::io::Result<UdpSocket> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "SO_REUSEPORT needs the x86-64 Linux syscall path",
        ))
    }

    pub(super) fn recv_more(_sock: &UdpSocket, _max: usize) -> Vec<(Vec<u8>, SocketAddr)> {
        Vec::new()
    }

    pub(super) fn send_batch(_sock: &UdpSocket, _msgs: &[(Vec<u8>, SocketAddr)]) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn loopback_pair() -> Option<(UdpSocket, UdpSocket)> {
        let a = UdpSocket::bind("127.0.0.1:0").ok()?;
        let b = UdpSocket::bind("127.0.0.1:0").ok()?;
        a.set_read_timeout(Some(Duration::from_millis(500))).ok()?;
        b.set_read_timeout(Some(Duration::from_millis(500))).ok()?;
        Some((a, b))
    }

    #[test]
    fn probe_is_stable() {
        let first = capability();
        let second = capability();
        assert_eq!(first.mmsg, second.mmsg);
        assert_eq!(first.reuseport, second.reuseport);
    }

    #[test]
    fn send_batch_delivers_every_datagram() {
        let Some((tx, rx)) = loopback_pair() else {
            eprintln!("skipping: loopback UDP not permitted");
            return;
        };
        let dest = rx.local_addr().unwrap();
        let msgs: Vec<(Vec<u8>, std::net::SocketAddr)> =
            (0u8..5).map(|i| (vec![i, i + 1, i + 2], dest)).collect();
        let (sent, batched) = send_batch(&tx, &msgs);
        assert_eq!(sent, 5, "send_batch lost datagrams");
        if capability().mmsg {
            assert_eq!(batched, 5, "mmsg capability present but not used");
        }
        let mut buf = [0u8; 64];
        let mut got = Vec::new();
        for _ in 0..5 {
            let (n, _) = rx.recv_from(&mut buf).expect("batched datagram missing");
            got.push(buf[..n].to_vec());
        }
        // Same-socket loopback UDP preserves send order.
        assert_eq!(got[0], vec![0, 1, 2]);
        assert_eq!(got[4], vec![4, 5, 6]);
    }

    #[test]
    fn recv_more_drains_a_burst_without_blocking() {
        let Some((tx, rx)) = loopback_pair() else {
            eprintln!("skipping: loopback UDP not permitted");
            return;
        };
        let dest = rx.local_addr().unwrap();
        for i in 0u8..6 {
            tx.send_to(&[i], dest).unwrap();
        }
        // Give loopback a moment to queue all six.
        std::thread::sleep(Duration::from_millis(50));
        let mut buf = [0u8; 64];
        let (n, from) = rx.recv_from(&mut buf).expect("first datagram");
        assert_eq!(n, 1);
        assert_eq!(from, tx.local_addr().unwrap());
        let more = recv_more(&rx, BATCH);
        if capability().mmsg {
            assert_eq!(more.len(), 5, "burst not drained in one batch");
            assert_eq!(more[0].0, vec![buf[0] + 1]);
            assert_eq!(more[0].1, from, "recvmmsg reported the wrong sender");
        } else {
            assert!(more.is_empty(), "portable path must not fake batching");
        }
        // Whatever recv_more left behind is still readable one by one.
        let mut rest = more.len();
        while rest < 5 {
            rx.recv_from(&mut buf).expect("remaining datagram");
            rest += 1;
        }
    }

    #[test]
    fn recv_more_on_empty_socket_returns_nothing() {
        let Some((_tx, rx)) = loopback_pair() else {
            eprintln!("skipping: loopback UDP not permitted");
            return;
        };
        assert!(recv_more(&rx, BATCH).is_empty());
    }

    #[test]
    fn reuseport_sockets_share_one_port() {
        if !capability().reuseport {
            eprintln!("skipping: SO_REUSEPORT not available");
            return;
        }
        let ip = std::net::Ipv4Addr::LOCALHOST;
        let a = bind_reuseport(ip, 0).expect("first reuseport bind");
        let port = a.local_addr().unwrap().port();
        let b = bind_reuseport(ip, port).expect("second bind on the same port");
        assert_eq!(b.local_addr().unwrap().port(), port);
        // A plain (non-reuseport) bind on the same port must still be
        // refused — the flag is per-socket, not a free-for-all.
        assert!(UdpSocket::bind(("127.0.0.1", port)).is_err());
    }
}
