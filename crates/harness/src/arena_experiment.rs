//! Run one measured multi-arena configuration.
//!
//! The single-world [`crate::experiment::Experiment`] answers "how fast
//! is one world at N players?"; this module answers the deployment
//! question "how should one machine carve its processors across many
//! worlds?" — same fabric, same bots, same cost model, with the arena
//! directory between them.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parquake_arena::{
    spawn_directory, AdmissionPolicy, AdmissionStats, ArenaDirectoryConfig, ArenaScheduling,
    PoolReport,
};
use parquake_bots::{spawn_swarm_multi, BotBehavior, BotSwarmConfig, SwarmRamp, SwarmTopology};
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{FabricKind, LockWitness, Nanos};
use parquake_metrics::{rollup, ArenaLoad, ElasticStats, SupervisorStats, WitnessReport};
use parquake_server::{CostModel, LockPolicy, ServerConfig, ServerKind};

/// One multi-arena configuration (a row of the arenasweep figure).
#[derive(Clone, Debug)]
pub struct ArenaExperimentConfig {
    /// Total bots across all arenas.
    pub players: u32,
    /// Number of independent worlds.
    pub arenas: u32,
    /// Shared-pool worker count (the machine's processors).
    pub workers: u32,
    /// Connect routing policy.
    pub policy: AdmissionPolicy,
    /// Use dedicated per-arena runtimes of this kind instead of the
    /// shared pool (`None` = pooled).
    pub dedicated: Option<ServerKind>,
    /// Run pooled frames under a region-locking policy (`None` = the
    /// sequential lock-free frame body).
    pub pooled_locking: Option<LockPolicy>,
    /// Map generator settings (shared map, per-arena entity state).
    pub map: MapGenConfig,
    /// Areanode tree depth per arena.
    pub areanode_depth: u32,
    /// Measured run length in fabric time.
    pub duration_ns: Nanos,
    /// Execution platform.
    pub fabric: FabricKind,
    /// Modelled CPU costs.
    pub cost: CostModel,
    /// Bot behaviour mix.
    pub behavior: BotBehavior,
    /// Workload seed.
    pub seed: u64,
    /// Client frame length in ms.
    pub client_frame_ms: u32,
    /// Bot driver tasks.
    pub bot_drivers: u32,
    /// Run the locking-protocol checkers and the lock witness.
    pub checking: bool,
    /// Elastic ceiling: pooled directories may grow to this many live
    /// arenas under admission pressure (0 = fixed fleet).
    pub max_arenas: u32,
    /// How long an arena's occupancy must stay zero before it is
    /// reaped (elastic directories only).
    pub linger_ns: Nanos,
    /// Server-side inactivity reclaim window (0 = never reclaim).
    pub client_timeout_ns: Nanos,
    /// Slots per arena override (`None` = players spread evenly over
    /// the boot arenas — elasticity runs want a smaller fixed size so
    /// the ramp actually overflows).
    pub slots_per_arena: Option<u16>,
    /// Bot population ramp (`None` = everyone plays the whole run).
    pub ramp: Option<SwarmRamp>,
    /// Supervise pooled frames (catch_unwind + checkpoint/restore +
    /// watchdog + graceful degradation).
    pub supervision: bool,
    /// Frame-fault injection (panic lottery / stalls) for supervised
    /// runs.
    pub frame_faults: Option<parquake_fabric::fault::FaultConfig>,
    /// Checkpoint cadence in frames (supervised pooled only).
    pub checkpoint_interval: u32,
    /// Watchdog bound on one claimed frame.
    pub watchdog_ns: Nanos,
    /// Arena every bot requests at connect time (`None` = spread
    /// requests `c % arenas`). `Some(k)` with the `Explicit` policy
    /// creates a deliberately skewed load — the shape migration
    /// rebalances.
    pub request_arena: Option<u16>,
    /// Live-migration spread threshold: when the hottest live arena's
    /// occupancy exceeds the coldest open arena's by at least this
    /// many clients, the director hands one slot off per tick (0 =
    /// migration off; pooled only).
    pub migrate_spread: u32,
    /// Drain-before-reap: live-migrate the last residents out of a
    /// lingering elastic arena instead of waiting their sessions out.
    pub migrate_drain: bool,
    /// Client-side prediction: bots run the shared movement kernel on
    /// the (identical) generated map, send the input-seq trailer, and
    /// reconcile against the server's trailered replies.
    pub predict: bool,
}

impl Default for ArenaExperimentConfig {
    fn default() -> ArenaExperimentConfig {
        ArenaExperimentConfig {
            players: 256,
            arenas: 4,
            workers: 4,
            policy: AdmissionPolicy::Explicit,
            dedicated: None,
            pooled_locking: None,
            map: MapGenConfig::large_arena(0x6D_6D_31),
            areanode_depth: 4,
            duration_ns: 10_000_000_000,
            fabric: FabricKind::VirtualSmp(Default::default()),
            cost: CostModel::default(),
            behavior: BotBehavior::deathmatch(),
            seed: 0xB07_5EED,
            client_frame_ms: 30,
            bot_drivers: 8,
            checking: cfg!(debug_assertions),
            max_arenas: 0,
            linger_ns: 500_000_000,
            client_timeout_ns: 0,
            slots_per_arena: None,
            ramp: None,
            supervision: false,
            frame_faults: None,
            checkpoint_interval: 64,
            watchdog_ns: 250_000_000,
            request_arena: None,
            migrate_spread: 0,
            migrate_drain: false,
            predict: false,
        }
    }
}

/// Result of one multi-arena run.
pub struct ArenaOutcome {
    /// One load summary per arena (server + client side).
    pub per_arena: Vec<ArenaLoad>,
    /// The machine-level rollup of `per_arena`.
    pub aggregate: ArenaLoad,
    /// Front-door routing counters.
    pub admission: AdmissionStats,
    /// Pool accounting (pooled scheduling only).
    pub pool: Option<PoolReport>,
    /// Bots that completed the connection handshake.
    pub connected: u32,
    /// The measured window (bots' send window).
    pub duration_ns: Nanos,
    /// Final world hash per arena (determinism checks).
    pub world_hashes: Vec<u64>,
    /// Lock-discipline witness report (present when `checking` was on).
    pub witness: Option<WitnessReport>,
    /// Elastic spawn/reap accounting (boot fleet only ⇒ no events).
    pub elastic: ElasticStats,
    /// Supervision accounting (all-zero when supervision is off).
    pub supervisor: SupervisorStats,
    /// Bots that followed a cross-arena re-ack to a new world (client
    /// side of `supervisor.migrations`).
    pub rehomed: u64,
    /// Merged client prediction/reconciliation statistics (all zeros
    /// when `predict` was off).
    pub prediction: parquake_metrics::PredictionStats,
    /// Unacked inputs still in client rings at shutdown — the
    /// `in_flight` term of the prediction ledger.
    pub predict_in_flight: u64,
}

impl ArenaOutcome {
    /// Aggregate response rate across every arena, replies/second.
    pub fn response_rate(&self) -> f64 {
        self.aggregate.response_rate(self.duration_ns)
    }

    /// Aggregate average response time in ms.
    pub fn avg_response_ms(&self) -> f64 {
        self.aggregate.avg_response_ms()
    }
}

/// A configured, runnable multi-arena experiment.
pub struct ArenaExperiment {
    pub cfg: ArenaExperimentConfig,
}

impl ArenaExperiment {
    pub fn new(cfg: ArenaExperimentConfig) -> ArenaExperiment {
        ArenaExperiment { cfg }
    }

    /// Spawn directory + swarm, run the fabric to completion and
    /// collect per-arena and aggregate metrics.
    pub fn run(&self) -> ArenaOutcome {
        let cfg = &self.cfg;
        assert!(cfg.arenas >= 1);
        let slots_per_arena = cfg
            .slots_per_arena
            .unwrap_or(cfg.players.div_ceil(cfg.arenas).max(1) as u16);
        let fabric = cfg.fabric.build();

        let witness = if cfg.checking {
            let w = Arc::new(LockWitness::new());
            fabric.attach_witness(w.clone());
            Some(w)
        } else {
            None
        };

        let mut server = ServerConfig::new(ServerKind::Sequential, cfg.duration_ns + 500_000_000);
        server.cost = cfg.cost.clone();
        server.checking = cfg.checking;
        server.client_timeout_ns = cfg.client_timeout_ns;
        if let Some(kind) = cfg.dedicated {
            server.kind = kind;
        }
        let dir_cfg = ArenaDirectoryConfig {
            policy: cfg.policy,
            scheduling: match cfg.dedicated {
                Some(_) => ArenaScheduling::Dedicated,
                None => ArenaScheduling::Pooled {
                    workers: cfg.workers,
                },
            },
            map: cfg.map.clone(),
            areanode_depth: cfg.areanode_depth,
            pooled_locking: cfg.pooled_locking,
            max_arenas: cfg.max_arenas,
            linger_ns: cfg.linger_ns,
            supervision: cfg.supervision,
            frame_faults: cfg.frame_faults.clone(),
            checkpoint_interval: cfg.checkpoint_interval,
            watchdog_ns: cfg.watchdog_ns,
            migrate_spread: cfg.migrate_spread,
            migrate_drain: cfg.migrate_drain,
            ..ArenaDirectoryConfig::new(cfg.arenas, slots_per_arena, server)
        };
        let handle = spawn_directory(&fabric, dir_cfg);

        // Bots spread across arenas by requesting arena `c % arenas`
        // through the front door; the Explicit default honours the
        // spread, other policies use it as a hint only.
        let swarm_cfg = BotSwarmConfig {
            players: cfg.players,
            drivers: cfg.bot_drivers,
            client_frame_ms: cfg.client_frame_ms,
            seed: cfg.seed,
            send_until: cfg.duration_ns,
            behavior: cfg.behavior.clone(),
            think_cost_ns: 15_000,
            jitter_ns: 8_000_000,
            ramp: cfg.ramp,
            // The directory's arenas all share one compiled map, so
            // predicting bots borrow arena 0's — bit-identical to what
            // the server kernels run against.
            predict: cfg
                .predict
                .then(|| parquake_bots::PredictMap(handle.worlds[0].map.clone())),
        };
        let topology = SwarmTopology {
            arena_ports: handle.arena_ports.clone(),
            connect_port: Some(handle.front_port),
        };
        let arenas = cfg.arenas;
        let req = cfg.request_arena;
        let swarm = spawn_swarm_multi(&fabric, &swarm_cfg, &topology, move |c| {
            (req.unwrap_or((c % arenas) as u16), 0)
        });

        fabric.run();

        let admission = handle.admission.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after fabric.run() returned, no tasks alive)
        let response = swarm.per_arena.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after fabric.run() returned, no tasks alive)
        let connected = swarm.connected.load(Ordering::Relaxed);
        // Cover every arena cell the directory provisioned — an
        // elastic run has result rows past the boot fleet.
        let per_arena: Vec<ArenaLoad> = (0..handle.results.len())
            .map(|k| {
                let r = handle.results[k].lock().unwrap(); // lockcheck: allow(raw-sync: host-side read after fabric.run() returned, no tasks alive)
                let m = r.merged();
                ArenaLoad {
                    arena: k as u16,
                    frames: r.frame_count,
                    replies: m.replies,
                    requests: m.requests,
                    datagrams: m.datagrams,
                    admitted: admission.per_arena.get(k).copied().unwrap_or(0),
                    response: response.get(k).cloned().unwrap_or_default(),
                }
            })
            .collect();
        let aggregate = rollup(&per_arena);
        let prediction = swarm.prediction.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after fabric.run() returned, no tasks alive)
        let elastic = handle.elastic.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after fabric.run() returned, no tasks alive)
        let supervisor = handle.supervisor.lock().unwrap().clone(); // lockcheck: allow(raw-sync: host-side read after fabric.run() returned, no tasks alive)

        ArenaOutcome {
            aggregate,
            per_arena,
            pool: handle.pool.as_ref().map(|p| p.lock().unwrap().clone()), // lockcheck: allow(raw-sync: host-side read after fabric.run() returned, no tasks alive)
            admission,
            connected,
            duration_ns: cfg.duration_ns,
            world_hashes: handle.worlds.iter().map(|w| w.world_hash()).collect(),
            witness: witness.map(|w| w.report()),
            elastic,
            supervisor,
            rehomed: swarm.rehomed.load(Ordering::Relaxed),
            prediction,
            predict_in_flight: swarm.predict_in_flight.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(players: u32, arenas: u32, workers: u32) -> ArenaExperimentConfig {
        ArenaExperimentConfig {
            players,
            arenas,
            workers,
            map: MapGenConfig::small_arena(7),
            duration_ns: 2_000_000_000,
            bot_drivers: 4,
            checking: true,
            ..ArenaExperimentConfig::default()
        }
    }

    #[test]
    fn multi_arena_run_accounts_cleanly() {
        let out = ArenaExperiment::new(quick(24, 3, 2)).run();
        assert_eq!(out.connected, 24);
        assert_eq!(out.per_arena.len(), 3);
        // Every arena served its share.
        for a in &out.per_arena {
            assert!(a.frames > 0, "arena {} idle", a.arena);
            assert!(a.response.received > 0, "arena {} unheard", a.arena);
        }
        // The rollup is the sum of the parts.
        let replies: u64 = out.per_arena.iter().map(|a| a.replies).sum();
        assert_eq!(out.aggregate.replies, replies);
        assert_eq!(out.admission.routed, out.admission.per_arena.iter().sum());
        assert_eq!(out.admission.rejected_full, 0);
        // The witness watched the pool lock and stayed happy.
        let report = out.witness.expect("checking was on");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = ArenaExperiment::new(quick(12, 2, 2)).run();
        let b = ArenaExperiment::new(quick(12, 2, 2)).run();
        assert_eq!(a.world_hashes, b.world_hashes);
        assert_eq!(a.aggregate.replies, b.aggregate.replies);
        assert_eq!(a.aggregate.frames, b.aggregate.frames);
    }

    /// End-to-end prediction: a predicting swarm against a real
    /// directory-run server. The divergence oracle must fire (clean
    /// windows exist) and never mismatch — client kernel, server
    /// kernel, and the wire trailer all agree bit-for-bit — and the
    /// prediction ledger must close.
    #[test]
    fn predicting_swarm_agrees_with_server_bit_for_bit() {
        let mut cfg = quick(12, 1, 2);
        cfg.predict = true;
        let out = ArenaExperiment::new(cfg).run();
        assert_eq!(out.connected, 12);
        let p = &out.prediction;
        assert!(p.predicted > 200, "predicted only {}", p.predicted);
        assert!(p.reconciled > 0);
        assert!(p.oracle_checks > 0, "oracle never armed");
        assert_eq!(p.oracle_mismatches, 0, "prediction kernel diverged");
        assert!(
            p.closed(out.predict_in_flight),
            "ledger leak: predicted {} != judged {} + dropped {} + in flight {}",
            p.predicted,
            p.judged,
            p.dropped,
            out.predict_in_flight
        );
    }

    /// Prediction under the legacy fabric stays wire-compatible: a
    /// legacy (non-predicting) swarm on the same build produces
    /// all-zero prediction stats and the same clean accounting.
    #[test]
    fn legacy_swarm_reports_zero_prediction_stats() {
        let out = ArenaExperiment::new(quick(8, 1, 2)).run();
        assert_eq!(out.prediction.predicted, 0);
        assert_eq!(out.predict_in_flight, 0);
    }
}
