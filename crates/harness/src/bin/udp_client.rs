//! `udp_client` — drive real-UDP bots against a `udpd` gateway.
//!
//! ```text
//! udp_client [--server 127.0.0.1:27500] [--threads 2] [--players 8] [--secs 5]
//! ```

use std::time::Duration;

use parquake_harness::udp::run_udp_clients;

fn main() {
    let mut server: std::net::SocketAddr = "127.0.0.1:27500".parse().unwrap();
    let mut threads = 2u32;
    let mut players = 8u32;
    let mut secs = 5u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--server" => {
                i += 1;
                server = args[i].parse().expect("--server addr:port");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads");
            }
            "--players" => {
                i += 1;
                players = args[i].parse().expect("--players");
            }
            "--secs" => {
                i += 1;
                secs = args[i].parse().expect("--secs");
            }
            other => {
                eprintln!("udp_client: unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    match run_udp_clients(server, threads, players, Duration::from_secs(secs)) {
        Ok((sent, received, avg_ms)) => {
            println!("udp_client: sent {sent}, received {received}, avg response {avg_ms:.2} ms")
        }
        Err(e) => {
            eprintln!("udp_client: {e}");
            std::process::exit(1);
        }
    }
}
