//! `udp_client` — drive real-UDP bots against a `udpd` gateway.
//!
//! ```text
//! udp_client [--server 127.0.0.1:27500] [--threads 2] [--players 8] [--secs 5]
//!            [--arenas N] [--ramp] [--sockets M]
//! ```
//!
//! `--arenas N` targets a multi-arena gateway (one socket): client `i`
//! requests arena `i % N` on connect and reply traffic is tallied per
//! arena. Without it the client spreads across `--threads` thread ports
//! as before. `--ramp` (arena mode only) staggers joins over the first
//! 30% of the run, holds, then drains everyone (with `Disconnect`s)
//! over the next 20% — leaving a quiet tail that lets an elastic
//! gateway reap its spawned arenas. `--sockets M` (arena mode only)
//! spreads the bots over M client sockets — a sharded `SO_REUSEPORT`
//! gateway balances flows by 4-tuple hash, so driving S server shards
//! needs at least S client sockets (one socket pins every bot to one
//! shard).

use std::time::Duration;

use parquake_harness::udp::run_udp_clients;
use parquake_harness::udp_arena::run_udp_arena_clients_sharded;

fn main() {
    let mut server: std::net::SocketAddr = "127.0.0.1:27500".parse().unwrap();
    let mut threads = 2u32;
    let mut players = 8u32;
    let mut secs = 5u64;
    let mut arenas: Option<u32> = None;
    let mut ramp = false;
    let mut sockets = 1u32;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--server" => {
                i += 1;
                server = args[i].parse().expect("--server addr:port");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads");
            }
            "--players" => {
                i += 1;
                players = args[i].parse().expect("--players");
            }
            "--secs" => {
                i += 1;
                secs = args[i].parse().expect("--secs");
            }
            "--arenas" => {
                i += 1;
                arenas = Some(args[i].parse().expect("--arenas"));
            }
            "--ramp" => ramp = true,
            "--sockets" => {
                i += 1;
                sockets = args[i].parse().expect("--sockets needs a number");
            }
            other => {
                eprintln!("udp_client: unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if let Some(arenas) = arenas {
        let duration = Duration::from_secs(secs);
        // 30% up, 30% hold, 20% down, 20% quiet tail for reaps.
        let windows = ramp.then(|| {
            (
                duration.mul_f64(0.3),
                duration.mul_f64(0.3),
                duration.mul_f64(0.2),
            )
        });
        match run_udp_arena_clients_sharded(
            server,
            arenas,
            players,
            duration,
            windows,
            sockets.max(1),
        ) {
            Ok((sent, received, avg_ms, per_arena, restarts, rehomed)) => {
                println!(
                    "udp_client: sent {sent}, received {received}, avg response {avg_ms:.2} ms"
                );
                for (k, n) in per_arena.iter().enumerate() {
                    println!("udp_client: arena{k} — {n} replies");
                }
                println!("udp_client: restarts observed — {restarts}");
                println!("udp_client: rehomings observed — {rehomed}");
            }
            Err(e) => {
                eprintln!("udp_client: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    match run_udp_clients(server, threads, players, Duration::from_secs(secs)) {
        Ok((sent, received, avg_ms)) => {
            println!("udp_client: sent {sent}, received {received}, avg response {avg_ms:.2} ms")
        }
        Err(e) => {
            eprintln!("udp_client: {e}");
            std::process::exit(1);
        }
    }
}
