//! `udp_client` — drive real-UDP bots against a `udpd` gateway.
//!
//! ```text
//! udp_client [--server 127.0.0.1:27500] [--threads 2] [--players 8] [--secs 5]
//!            [--arenas N] [--ramp] [--sockets M] [--predict]
//! ```
//!
//! `--arenas N` targets a multi-arena gateway (one socket): client `i`
//! requests arena `i % N` on connect and reply traffic is tallied per
//! arena. Without it the client spreads across `--threads` thread ports
//! as before. `--ramp` (arena mode only) staggers joins over the first
//! 30% of the run, holds, then drains everyone (with `Disconnect`s)
//! over the next 20% — leaving a quiet tail that lets an elastic
//! gateway reap its spawned arenas. `--sockets M` (arena mode only)
//! spreads the bots over M client sockets — a sharded `SO_REUSEPORT`
//! gateway balances flows by 4-tuple hash, so driving S server shards
//! needs at least S client sockets (one socket pins every bot to one
//! shard). `--predict` turns on client-side prediction: every bot runs
//! the movement kernel locally against the default `udpd` map, opts
//! into the Move/Reply prediction trailer, and reconciles against each
//! authoritative reply; the run prints the full prediction ledger
//! including the divergence oracle (only valid against a `udpd` run
//! with the default map).

use std::sync::Arc;
use std::time::Duration;

use parquake_harness::udp::{run_udp_clients_predicting, UdpServerOpts};
use parquake_harness::udp_arena::run_udp_arena_clients_predicting;
use parquake_metrics::PredictionStats;

fn print_prediction(p: &PredictionStats, in_flight: u64) {
    println!(
        "udp_client: prediction — {} predicted, {} reconciles, {} judged, {} replayed, \
         {} mispredicted ({:.2}%), {} ring overflows",
        p.predicted,
        p.reconciled,
        p.judged,
        p.replayed,
        p.mispredictions,
        p.misprediction_rate() * 100.0,
        p.ring_overflows
    );
    println!(
        "udp_client: prediction depth — p50 {} p95 {} max {} over {} reconciles",
        p.depth.percentile(0.50),
        p.depth.percentile(0.95),
        p.depth.max(),
        p.depth.samples()
    );
    println!(
        "udp_client: prediction oracle — {} checks, {} divergence",
        p.oracle_checks, p.oracle_mismatches
    );
    println!(
        "udp_client: prediction ledger — {} predicted == {} judged + {} dropped \
         + {} in flight — accounting {}",
        p.predicted,
        p.judged,
        p.dropped,
        in_flight,
        if p.closed(in_flight) {
            "closes"
        } else {
            "DOES NOT CLOSE"
        }
    );
}

fn main() {
    let mut server: std::net::SocketAddr = "127.0.0.1:27500".parse().unwrap();
    let mut threads = 2u32;
    let mut players = 8u32;
    let mut secs = 5u64;
    let mut arenas: Option<u32> = None;
    let mut ramp = false;
    let mut sockets = 1u32;
    let mut predict = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--server" => {
                i += 1;
                server = args[i].parse().expect("--server addr:port");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("--threads");
            }
            "--players" => {
                i += 1;
                players = args[i].parse().expect("--players");
            }
            "--secs" => {
                i += 1;
                secs = args[i].parse().expect("--secs");
            }
            "--arenas" => {
                i += 1;
                arenas = Some(args[i].parse().expect("--arenas"));
            }
            "--ramp" => ramp = true,
            "--sockets" => {
                i += 1;
                sockets = args[i].parse().expect("--sockets needs a number");
            }
            "--predict" => predict = true,
            other => {
                eprintln!("udp_client: unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // Prediction needs the *same compiled map* as the server; `udpd`
    // has no map flag, so both sides share the `UdpServerOpts` default
    // generator.
    let map = predict.then(|| Arc::new(UdpServerOpts::default().map.generate()));
    if let Some(arenas) = arenas {
        let duration = Duration::from_secs(secs);
        // 30% up, 30% hold, 20% down, 20% quiet tail for reaps.
        let windows = ramp.then(|| {
            (
                duration.mul_f64(0.3),
                duration.mul_f64(0.3),
                duration.mul_f64(0.2),
            )
        });
        match run_udp_arena_clients_predicting(
            server,
            arenas,
            players,
            duration,
            windows,
            sockets.max(1),
            map,
        ) {
            Ok(out) => {
                println!(
                    "udp_client: sent {}, received {}, avg response {:.2} ms",
                    out.sent, out.received, out.avg_ms
                );
                for (k, n) in out.per_arena.iter().enumerate() {
                    println!("udp_client: arena{k} — {n} replies");
                }
                println!("udp_client: restarts observed — {}", out.restarts_observed);
                println!("udp_client: rehomings observed — {}", out.rehomed_observed);
                if predict {
                    print_prediction(&out.prediction, out.predict_in_flight);
                }
            }
            Err(e) => {
                eprintln!("udp_client: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    match run_udp_clients_predicting(server, threads, players, Duration::from_secs(secs), map) {
        Ok(out) => {
            println!(
                "udp_client: sent {}, received {}, avg response {:.2} ms",
                out.sent, out.received, out.avg_ms
            );
            if predict {
                print_prediction(&out.prediction, out.predict_in_flight);
            }
        }
        Err(e) => {
            eprintln!("udp_client: {e}");
            std::process::exit(1);
        }
    }
}
