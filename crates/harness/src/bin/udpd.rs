//! `udpd` — serve parquake over real UDP sockets.
//!
//! ```text
//! udpd [--port 27500] [--threads 2] [--players 32] [--secs 10]
//! ```
//!
//! Thread `t` listens on `port + t` (the paper's one-UDP-port-per-thread
//! scheme). Pair with the `udp_client` binary or any protocol-speaking
//! client.

use std::time::Duration;

use parquake_harness::udp::{run_udp_server, UdpServerOpts};

fn main() {
    let mut opts = UdpServerOpts::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--port" => {
                i += 1;
                opts.base_port = args[i].parse().expect("--port needs a number");
            }
            "--threads" => {
                i += 1;
                opts.threads = args[i].parse().expect("--threads needs a number");
            }
            "--players" => {
                i += 1;
                opts.max_players = args[i].parse().expect("--players needs a number");
            }
            "--secs" => {
                i += 1;
                opts.duration = Duration::from_secs(args[i].parse().expect("--secs"));
            }
            other => {
                eprintln!("udpd: unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    println!(
        "udpd: {} threads on 127.0.0.1:{}..{}, {} player slots, {}s",
        opts.threads,
        opts.base_port,
        opts.base_port + opts.threads as u16 - 1,
        opts.max_players,
        opts.duration.as_secs()
    );
    match run_udp_server(&opts) {
        Ok(report) => println!(
            "udpd: done — {} datagrams in, {} out, {} replies over {} frames",
            report.datagrams_in, report.datagrams_out, report.replies, report.frames
        ),
        Err(e) => {
            eprintln!("udpd: {e}");
            std::process::exit(1);
        }
    }
}
