//! `udpd` — serve parquake over real UDP sockets.
//!
//! ```text
//! udpd [--port 27500] [--threads 2] [--players 32] [--secs 10]
//!      [--loss P] [--dup P] [--delay P] [--delay-ms MS] [--min-delay-ms MS]
//!      [--burst-loss P] [--burst-len N] [--jitter-ms MS]
//!      [--fault-seed N] [--timeout-secs S]
//!      [--interest scan|sweep|sweep-oracle]
//!      [--arenas N] [--workers W] [--max-arenas M] [--linger-ms MS]
//!      [--crash-rate P] [--crash-seed N]
//!      [--migrate-spread N] [--migrate-drain]
//!      [--gateway-shards S]
//! ```
//!
//! Thread `t` listens on `port + t` (the paper's one-UDP-port-per-thread
//! scheme). Pair with the `udp_client` binary or any protocol-speaking
//! client. The `--loss/--dup/--delay` probabilities (0.0–1.0) enable
//! seeded fault injection on the inbound path; `--min-delay-ms` floors
//! the delay draw, `--burst-loss`/`--burst-len` add Gilbert–Elliott
//! bursty loss (loss probability inside a burst, mean burst length),
//! and `--jitter-ms` adds a uniform per-copy jitter that reorders
//! deliveries. The composed profile is validated at startup (exit 2 on
//! an inconsistent one). `--timeout-secs` sets the server-side
//! inactivity reclaim (0 disables it).
//! `--interest sweep` computes visible-entity sets with the batch DDM
//! sweep instead of per-client scans; `sweep-oracle` additionally runs
//! the scan as a shadow oracle per reply and counts mismatches (the
//! report prints the pair-accounting identity and the oracle verdict).
//!
//! `--arenas N` (N ≥ 1) switches to the multi-arena gateway: N worlds
//! behind ONE socket on `--port`, frames scheduled on a `--workers`
//! shared pool, with `--players` slots per arena. `--threads` does not
//! apply in this mode; every other flag keeps its meaning.
//! `--max-arenas M` (M > N) makes the directory elastic: it spawns
//! arenas under admission pressure up to M and reaps arenas whose
//! occupancy stays zero past `--linger-ms` (default 500).
//! `--crash-rate P` (arena mode only) turns supervision on and injects
//! a seeded per-frame panic lottery with probability P per arena
//! frame; every crash is caught, the arena restored from its last
//! checkpoint, and the supervisor's accounting printed at shutdown.
//! `--migrate-spread N` (arena mode only) turns on cross-arena live
//! migration: whenever the hottest live arena holds at least N more
//! clients than the coldest open one, the director hands one slot off
//! per tick. `--migrate-drain` additionally empties lingering elastic
//! arenas slot by slot so the reaper finds them empty.
//! `--gateway-shards S` (arena mode only) runs S inbound/outbound pump
//! pairs on the one UDP port via `SO_REUSEPORT` (kernel 4-tuple hash
//! spreads client flows across the shard sockets; the report prints
//! whether batched syscalls and reuseport are live). `S = 1` is the
//! classic single-pump gateway, fault lottery included.

use std::time::Duration;

use parquake_harness::udp::{run_udp_server, thread_port, UdpServerOpts};
use parquake_harness::udp_arena::{run_udp_arena_server, UdpArenaOpts};
use parquake_server::InterestMode;

fn main() {
    let mut opts = UdpServerOpts::default();
    let mut arenas: Option<u32> = None;
    let mut workers = 2u32;
    let mut max_arenas = 0u32;
    let mut linger = Duration::from_millis(500);
    let mut crash_rate = 0f32;
    let mut crash_seed = 0xC4A5_5EEDu64;
    let mut migrate_spread = 0u32;
    let mut migrate_drain = false;
    let mut gateway_shards = 1u32;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--port" => {
                i += 1;
                opts.base_port = args[i].parse().expect("--port needs a number");
            }
            "--threads" => {
                i += 1;
                opts.threads = args[i].parse().expect("--threads needs a number");
            }
            "--players" => {
                i += 1;
                opts.max_players = args[i].parse().expect("--players needs a number");
            }
            "--secs" => {
                i += 1;
                opts.duration = Duration::from_secs(args[i].parse().expect("--secs"));
            }
            "--loss" => {
                i += 1;
                opts.fault.drop = args[i].parse().expect("--loss needs 0.0-1.0");
            }
            "--dup" => {
                i += 1;
                opts.fault.duplicate = args[i].parse().expect("--dup needs 0.0-1.0");
            }
            "--delay" => {
                i += 1;
                opts.fault.delay = args[i].parse().expect("--delay needs 0.0-1.0");
            }
            "--delay-ms" => {
                i += 1;
                let ms: u64 = args[i].parse().expect("--delay-ms needs a number");
                opts.fault.max_delay_ns = ms * 1_000_000;
            }
            "--min-delay-ms" => {
                i += 1;
                let ms: u64 = args[i].parse().expect("--min-delay-ms needs a number");
                opts.fault.min_delay_ns = ms * 1_000_000;
            }
            "--burst-loss" => {
                i += 1;
                opts.fault.burst_loss = args[i].parse().expect("--burst-loss needs 0.0-1.0");
            }
            "--burst-len" => {
                i += 1;
                opts.fault.burst_len = args[i].parse().expect("--burst-len needs >= 1.0");
            }
            "--jitter-ms" => {
                i += 1;
                let ms: u64 = args[i].parse().expect("--jitter-ms needs a number");
                opts.fault.jitter_ns = ms * 1_000_000;
            }
            "--fault-seed" => {
                i += 1;
                opts.fault.seed = args[i].parse().expect("--fault-seed needs a number");
            }
            "--timeout-secs" => {
                i += 1;
                opts.client_timeout = Duration::from_secs(args[i].parse().expect("--timeout-secs"));
            }
            "--interest" => {
                i += 1;
                opts.interest = InterestMode::from_flag(&args[i])
                    .expect("--interest needs scan|sweep|sweep-oracle");
            }
            "--arenas" => {
                i += 1;
                arenas = Some(args[i].parse().expect("--arenas needs a number"));
            }
            "--workers" => {
                i += 1;
                workers = args[i].parse().expect("--workers needs a number");
            }
            "--max-arenas" => {
                i += 1;
                max_arenas = args[i].parse().expect("--max-arenas needs a number");
            }
            "--linger-ms" => {
                i += 1;
                linger =
                    Duration::from_millis(args[i].parse().expect("--linger-ms needs a number"));
            }
            "--crash-rate" => {
                i += 1;
                crash_rate = args[i].parse().expect("--crash-rate needs 0.0-1.0");
            }
            "--crash-seed" => {
                i += 1;
                crash_seed = args[i].parse().expect("--crash-seed needs a number");
            }
            "--migrate-spread" => {
                i += 1;
                migrate_spread = args[i].parse().expect("--migrate-spread needs a number");
            }
            "--migrate-drain" => migrate_drain = true,
            "--gateway-shards" => {
                i += 1;
                gateway_shards = args[i].parse().expect("--gateway-shards needs a number");
            }
            other => {
                eprintln!("udpd: unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // Reject impossible fault profiles (min > max, rates outside
    // [0,1], burst length < 1) before any socket is bound.
    if let Err(e) = opts.fault.validate() {
        eprintln!("udpd: invalid fault profile — {e}");
        std::process::exit(2);
    }
    if let Some(arenas) = arenas {
        run_arena_mode(
            &opts,
            arenas.max(1),
            workers.max(1),
            max_arenas,
            linger,
            crash_rate,
            crash_seed,
            migrate_spread,
            migrate_drain,
            gateway_shards.max(1),
        );
        return;
    }
    let last_port = match thread_port(opts.base_port, opts.threads.saturating_sub(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("udpd: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "udpd: {} threads on 127.0.0.1:{}..{}, {} player slots, {}s",
        opts.threads,
        opts.base_port,
        last_port,
        opts.max_players,
        opts.duration.as_secs()
    );
    if opts.interest.uses_sweep() {
        println!(
            "udpd: interest matching — {}{}",
            opts.interest.label(),
            if opts.interest.oracle() {
                " (per-reply scan shadow oracle)"
            } else {
                ""
            }
        );
    }
    if !opts.fault.is_noop() {
        println!(
            "udpd: fault injection — drop {:.1}%, burst {:.1}% (mean len {:.1}), dup {:.1}%, \
             delay {:.1}% in {}..{} ms, jitter up to {} ms, seed {:#x}",
            opts.fault.drop * 100.0,
            opts.fault.burst_loss * 100.0,
            opts.fault.burst_len,
            opts.fault.duplicate * 100.0,
            opts.fault.delay * 100.0,
            opts.fault.min_delay_ns / 1_000_000,
            opts.fault.max_delay_ns / 1_000_000,
            opts.fault.jitter_ns / 1_000_000,
            opts.fault.seed
        );
    }
    match run_udp_server(&opts) {
        Ok(report) => {
            println!(
                "udpd: done — {} datagrams in, {} out, {} replies over {} frames",
                report.datagrams_in, report.datagrams_out, report.replies, report.frames
            );
            println!(
                "udpd: inbound fates — {} forwarded ({} dup copies), {} fault-dropped, \
                 {} decode-rejected, {} spoof-rejected",
                report.forwarded,
                report.fault_duplicated,
                report.fault_dropped,
                report.decode_rejected,
                report.spoof_rejected
            );
            println!(
                "udpd: server fates — {} processed, {} queue-dropped, {} pending at shutdown, \
                 {} slots timed out, {} replies unroutable — accounting {}",
                report.server_processed,
                report.queue_dropped,
                report.pending_at_shutdown,
                report.timeouts,
                report.replies_unroutable,
                if report.accounting_closed() {
                    "closes"
                } else {
                    "DOES NOT CLOSE"
                }
            );
            if opts.interest.uses_sweep() {
                let ist = &report.interest;
                println!(
                    "udpd: interest — {} frames indexed, {} viewer-entity pairs \
                     ({} tested + {} skipped) — pair accounting {}",
                    ist.frames,
                    ist.pairs_total,
                    ist.pairs_tested,
                    ist.pairs_skipped,
                    if ist.pairs_closed() {
                        "closes"
                    } else {
                        "DOES NOT CLOSE"
                    }
                );
                if opts.interest.oracle() {
                    println!(
                        "udpd: interest oracle — {} replies checked, {} mismatches{}",
                        ist.oracle_checked,
                        ist.oracle_mismatches,
                        if ist.oracle_mismatches == 0 {
                            " — sweep == scan"
                        } else {
                            " — SWEEP DIVERGED FROM SCAN"
                        }
                    );
                }
            }
        }
        Err(e) => {
            eprintln!("udpd: {e}");
            std::process::exit(1);
        }
    }
}

/// `--arenas` mode: N worlds behind one socket on a shared worker pool.
#[allow(clippy::too_many_arguments)]
fn run_arena_mode(
    base: &UdpServerOpts,
    arenas: u32,
    workers: u32,
    max_arenas: u32,
    linger: Duration,
    crash_rate: f32,
    crash_seed: u64,
    migrate_spread: u32,
    migrate_drain: bool,
    gateway_shards: u32,
) {
    let opts = UdpArenaOpts {
        port: base.base_port,
        gateway_shards,
        arenas,
        workers,
        slots_per_arena: base.max_players,
        map: base.map.clone(),
        duration: base.duration,
        fault: base.fault.clone(),
        client_timeout: base.client_timeout,
        max_arenas,
        linger,
        crash_rate,
        crash_seed,
        migrate_spread,
        migrate_drain,
        ..UdpArenaOpts::default()
    };
    println!(
        "udpd: {} arenas x {} slots on 127.0.0.1:{} (one socket), {}-worker pool, {}s",
        opts.arenas,
        opts.slots_per_arena,
        opts.port,
        opts.workers,
        opts.duration.as_secs()
    );
    if opts.gateway_shards > 1 {
        let cap = parquake_harness::mmsg::capability();
        println!(
            "udpd: gateway sharding — {} pump pairs ({}, {})",
            opts.gateway_shards,
            if cap.reuseport {
                "SO_REUSEPORT"
            } else {
                "shared-socket fallback"
            },
            if cap.mmsg {
                "batched recvmmsg/sendmmsg"
            } else {
                "one-datagram syscalls"
            }
        );
    }
    if opts.max_arenas > opts.arenas {
        println!(
            "udpd: elastic — up to {} arenas, {} ms linger before reap",
            opts.max_arenas,
            opts.linger.as_millis()
        );
    }
    if opts.crash_rate > 0.0 {
        println!(
            "udpd: supervision on — crash lottery {:.2}%/frame, seed {:#x}",
            opts.crash_rate * 100.0,
            opts.crash_seed
        );
    }
    if opts.migrate_spread > 0 || opts.migrate_drain {
        println!(
            "udpd: live migration on — spread threshold {}, drain-before-reap {}",
            opts.migrate_spread,
            if opts.migrate_drain { "on" } else { "off" }
        );
    }
    if !opts.fault.is_noop() {
        println!(
            "udpd: fault injection — drop {:.1}%, burst {:.1}% (mean len {:.1}), dup {:.1}%, \
             delay {:.1}% in {}..{} ms, jitter up to {} ms, seed {:#x}",
            opts.fault.drop * 100.0,
            opts.fault.burst_loss * 100.0,
            opts.fault.burst_len,
            opts.fault.duplicate * 100.0,
            opts.fault.delay * 100.0,
            opts.fault.min_delay_ns / 1_000_000,
            opts.fault.max_delay_ns / 1_000_000,
            opts.fault.jitter_ns / 1_000_000,
            opts.fault.seed
        );
    }
    match run_udp_arena_server(&opts) {
        Ok(report) => {
            println!(
                "udpd: done — {} datagrams in, {} out, {} routed connects \
                 ({} sticky, {} rejected-full)",
                report.datagrams_in,
                report.datagrams_out,
                report.admission.routed,
                report.admission.sticky,
                report.admission.rejected_full
            );
            println!(
                "udpd: gateway fates — {} to front door, {} straight to arenas, \
                 {} fault-dropped ({} dup copies), {} decode-rejected, \
                 {} spoof-rejected, {} arena-unknown",
                report.to_front,
                report.forwarded - report.to_front,
                report.fault_dropped,
                report.fault_duplicated,
                report.decode_rejected,
                report.spoof_rejected,
                report.arena_unknown
            );
            for lane in &report.shards {
                println!(
                    "udpd: shard{} — {} in, {} out ({} batched recvs, {} batched sends), \
                     {} forwarded ({} to front), {} fault-dropped ({} dup copies), \
                     {} decode-rejected, {} spoof-rejected, {} arena-unknown, \
                     {} replies unroutable — identity {}",
                    lane.shard,
                    lane.datagrams_in,
                    lane.datagrams_out,
                    lane.batched_recvs,
                    lane.batched_sends,
                    lane.forwarded,
                    lane.to_front,
                    lane.fault_dropped,
                    lane.fault_duplicated,
                    lane.decode_rejected,
                    lane.spoof_rejected,
                    lane.arena_unknown,
                    lane.replies_unroutable,
                    if lane.accounting_closed() {
                        "closes"
                    } else {
                        "DOES NOT CLOSE"
                    }
                );
            }
            for (k, lane) in report.lanes.iter().enumerate() {
                println!(
                    "udpd: arena{} — {} admitted, {} replies over {} frames; \
                     {} pump + {} director forwarded = {} processed + {} dropped \
                     + {} pending — accounting {}",
                    k,
                    lane.admitted,
                    lane.replies,
                    lane.frames,
                    lane.pump_forwarded,
                    lane.director_forwarded,
                    lane.processed,
                    lane.queue_dropped,
                    lane.pending_at_shutdown,
                    if lane.accounting_closed() {
                        "closes"
                    } else {
                        "DOES NOT CLOSE"
                    }
                );
            }
            let e = &report.elastic;
            println!(
                "udpd: elastic — {} spawned, {} reaped (peak {} live, {} at end)",
                e.spawned, e.reaped, e.peak_live, e.live_at_end
            );
            for ev in &e.events {
                println!(
                    "udpd: elastic t={:.2}s arena{} {:?} -> {} live",
                    ev.at as f64 / 1e9,
                    ev.arena,
                    ev.kind,
                    ev.live
                );
            }
            if opts.crash_rate > 0.0 {
                let s = &report.supervisor;
                println!(
                    "udpd: supervisor — caught {} panics, condemned {} stuck, \
                     restored {} arenas (avg recovery {:.2} ms, {} placements replayed)",
                    s.panics_caught,
                    s.stuck_detected,
                    s.restarts,
                    s.avg_recovery_ms(),
                    s.replayed_placements
                );
                println!(
                    "udpd: supervisor — {} checkpoints ({} KiB), {} shed frames, \
                     {} moves coalesced",
                    s.checkpoints_taken,
                    s.checkpoint_bytes / 1024,
                    s.shed_frames,
                    s.coalesced_moves
                );
                for ev in &s.events {
                    println!(
                        "udpd: supervisor t={:.2}s arena{} {:?}",
                        ev.at as f64 / 1e9,
                        ev.arena,
                        ev.kind
                    );
                }
            }
            if opts.migrate_spread > 0 || opts.migrate_drain {
                let s = &report.supervisor;
                println!(
                    "udpd: migration — migrated {} slots ({} by drain), {} aborted, \
                     {} hash mismatches",
                    s.migrations, s.drain_migrations, s.migrate_aborted, s.migrate_hash_mismatch
                );
            }
            if !report.lanes_missing_counters.is_empty() {
                println!(
                    "udpd: WARNING — lanes with absent director counters: {:?}",
                    report.lanes_missing_counters
                );
            }
            let adm = &report.admission;
            let identity_closes = adm.placed == adm.departed + adm.resident;
            println!(
                "udpd: population identity — placed {} == departed {} + resident {} — \
                 accounting {} ({} connected, {} disconnected, {} reclaimed, \
                 {} migrated notices)",
                adm.placed,
                adm.departed,
                adm.resident,
                if identity_closes {
                    "closes"
                } else {
                    "DOES NOT CLOSE"
                },
                adm.notice_connected,
                adm.notice_disconnected,
                adm.notice_reclaimed,
                adm.notice_migrated
            );
            println!(
                "udpd: overall accounting {}",
                if report.accounting_closed() && identity_closes {
                    "closes"
                } else {
                    "DOES NOT CLOSE"
                }
            );
            if !report.accounting_closed() || !identity_closes {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("udpd: {e}");
            std::process::exit(1);
        }
    }
}
