//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <subcommand> [options]
//!
//! subcommands:
//!   table1            system configuration table
//!   fig4              sequential vs 1-thread parallel overhead
//!   fig5              parallel performance, baseline locking
//!   fig6              parallel performance, optimized locking
//!   fig7a|fig7b|fig7c locking overhead analysis
//!   waitstats         §4.2/§5.2 imbalance and wait decomposition
//!   batching          request batching study (paper future work)
//!   onepass           one-pass locking study (paper future work)
//!   dynassign         dynamic region-affine assignment (paper future work)
//!   delta             QuakeWorld-style delta-compressed replies (extension)
//!   losssweep         response rate vs injected datagram loss (extension)
//!   arenasweep        multi-arena shared-pool multiplexing (extension)
//!   elasticity        elastic arena spawn/reap under a population ramp (extension)
//!   crashsweep        response-rate retention vs injected crash rate (extension)
//!   chaossweep        client prediction under combined WAN fault profiles (extension)
//!   migratesweep      live migration recovering a skewed fleet (extension)
//!   interestsweep     batch DDM interest matching vs per-client scans (extension)
//!   gatewaysweep      sharded UDP gateway over loopback sockets (extension)
//!   timeline          per-frame CSV dump for one configuration
//!   all               everything above in sequence
//!
//! options:
//!   --quick           short runs, fewer player counts
//!   --duration SECS   measured virtual seconds per configuration
//!   --players LIST    comma-separated player counts (e.g. 64,128,160)
//!   --seed N          map/workload seed
//! ```

use parquake_harness::figures::{
    arenasweep, batching, chaossweep, common::SweepOpts, crashsweep, delta, dynassign, elasticity,
    fig4, fig5, fig6, fig7, gatewaysweep, interestsweep, losssweep, migratesweep, onepass, table1,
    waitstats,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprintln!(
            "usage: repro <table1|fig4|fig5|fig6|fig7a|fig7b|fig7c|waitstats|batching|onepass|dynassign|delta|losssweep|arenasweep|elasticity|crashsweep|chaossweep|migratesweep|interestsweep|gatewaysweep|all> [options]"
        );
        std::process::exit(2);
    };

    let mut opts = SweepOpts::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts = SweepOpts::quick(),
            "--duration" => {
                i += 1;
                opts.duration_secs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--duration needs a number"));
            }
            "--players" => {
                i += 1;
                opts.players = args
                    .get(i)
                    .map(|v| {
                        v.split(',')
                            .map(|p| p.parse().unwrap_or_else(|_| die("bad player count")))
                            .collect()
                    })
                    .unwrap_or_else(|| die("--players needs a list"));
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            other => die(&format!("unknown option {other}")),
        }
        i += 1;
    }

    let t0 = std::time::Instant::now();
    match cmd.as_str() {
        "table1" => println!("{}", table1::run()),
        "fig4" => println!("{}", fig4::run(&opts)),
        "fig5" => println!("{}", fig5::run(&opts)),
        "fig6" => println!("{}", fig6::run(&opts)),
        "fig7a" => println!("{}", fig7::run_a(&opts)),
        "fig7b" => println!("{}", fig7::run_b(&opts)),
        "fig7c" => println!("{}", fig7::run_c(&opts)),
        "waitstats" => println!("{}", waitstats::run(&opts)),
        "batching" => println!("{}", batching::run(&opts)),
        "onepass" => println!("{}", onepass::run(&opts)),
        "dynassign" => println!("{}", dynassign::run(&opts)),
        "delta" => println!("{}", delta::run(&opts)),
        "losssweep" => println!("{}", losssweep::run(&opts)),
        "arenasweep" => println!("{}", arenasweep::run(&opts)),
        "elasticity" => println!("{}", elasticity::run(&opts)),
        "crashsweep" => println!("{}", crashsweep::run(&opts)),
        "chaossweep" => println!("{}", chaossweep::run(&opts)),
        "migratesweep" => println!("{}", migratesweep::run(&opts)),
        "interestsweep" => println!("{}", interestsweep::run(&opts)),
        "gatewaysweep" => println!("{}", gatewaysweep::run(&opts)),
        "timeline" => {
            // Per-frame CSV for one configuration (8 threads, optimized,
            // last player count of the sweep).
            use parquake_harness::figures::common::run_config;
            use parquake_server::{LockPolicy, ServerKind};
            let players = *opts.players.last().unwrap_or(&128);
            let out = run_config(
                players,
                ServerKind::Parallel {
                    threads: 8,
                    locking: LockPolicy::Optimized,
                },
                &opts,
            );
            print!("{}", out.server.timeline.to_csv());
            eprintln!(
                "[repro] {} frames recorded, duration p50 {:.2} ms / p95 {:.2} ms",
                out.server.timeline.len(),
                out.server.timeline.duration_percentile(0.5) as f64 / 1e6,
                out.server.timeline.duration_percentile(0.95) as f64 / 1e6,
            );
        }
        "all" => {
            println!("{}", table1::run());
            println!("{}", fig4::run(&opts));
            println!("{}", fig5::run(&opts));
            println!("{}", fig6::run(&opts));
            println!("{}", fig7::run_a(&opts));
            println!("{}", fig7::run_b(&opts));
            println!("{}", fig7::run_c(&opts));
            println!("{}", waitstats::run(&opts));
            println!("{}", batching::run(&opts));
            println!("{}", onepass::run(&opts));
            println!("{}", dynassign::run(&opts));
            println!("{}", delta::run(&opts));
            println!("{}", losssweep::run(&opts));
            println!("{}", arenasweep::run(&opts));
            println!("{}", elasticity::run(&opts));
            println!("{}", crashsweep::run(&opts));
            println!("{}", chaossweep::run(&opts));
            println!("{}", migratesweep::run(&opts));
            println!("{}", interestsweep::run(&opts));
            println!("{}", gatewaysweep::run(&opts));
        }
        other => die(&format!("unknown subcommand {other}")),
    }
    eprintln!("[repro] completed in {:.1}s", t0.elapsed().as_secs_f64());
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
