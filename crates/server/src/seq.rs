//! The sequential server (paper §2.1): one thread, no locks.
//!
//! The frame loop is the original's: block in `select` until a request
//! arrives, update world physics, receive and process requests until
//! the queue is empty, then form and send replies to every client that
//! sent a request this frame.

use std::sync::{Arc, Mutex, PoisonError};

use parquake_fabric::{Fabric, TaskCtx};
use parquake_interest::InterestStats;
use parquake_metrics::{Bucket, FrameSample, FrameStats, ThreadStats, Timeline};
use parquake_sim::GameWorld;

use crate::runtime::ServerShared;
use crate::{ServerConfig, ServerHandle, ServerResults};

/// Spawn the sequential server task onto `fabric`.
pub fn spawn_sequential(
    fabric: &Arc<dyn Fabric>,
    cfg: ServerConfig,
    world: Arc<GameWorld>,
) -> ServerHandle {
    let shared = Arc::new(ServerShared::new(fabric, &cfg, world, 1, None));
    let results = Arc::new(Mutex::new(ServerResults::default()));
    let handle = ServerHandle {
        ports: shared.ports.clone(),
        results: results.clone(),
        slots_per_thread: shared.slots_per_thread,
    };
    let res = results.clone();
    let sh = shared.clone();
    fabric.spawn(
        "server-seq",
        Some(0),
        Box::new(move |ctx| run(ctx, &sh, &res)),
    );
    handle
}

fn run(ctx: &TaskCtx, shared: &ServerShared, results: &Mutex<ServerResults>) {
    // The sequential server never enables the parallel protocol
    // checkers: there is no locking protocol to check.
    shared.world.links.set_checking(false);
    shared.world.store.set_checking(false);

    let port = shared.ports[0];
    let mut stats = ThreadStats::new();
    let mut frames = FrameStats::new();
    let mut timeline = Timeline::default();
    let mut istats = InterestStats::default();
    let mut frame_no: u32 = 0;

    loop {
        // S: block until a request arrives (or the run ends).
        let t0 = ctx.now();
        let readable = ctx.wait_readable(port, Some(shared.end_time));
        if !readable {
            // End-of-run drain tail: not part of the measured window.
            break;
        }
        stats.breakdown.add(Bucket::Idle, ctx.now() - t0);
        ctx.charge(shared.cost.select_op);
        frame_no += 1;
        let frame_start = ctx.now();

        let frame_body = |stats: &mut ThreadStats, istats: &mut InterestStats| {
            // P: world physics.
            let t0 = ctx.now();
            shared.run_world_update(ctx, port, stats, frame_no);
            stats.breakdown.add(Bucket::World, ctx.now() - t0);
            stats.mastered += 1;

            // Rx/E: drain the request queue.
            let mut unused_mask = 0u64;
            let moves = shared.drain_requests(ctx, 0, port, stats, &mut unused_mask);

            // T/Tx: replies for everyone who sent a request.
            let t0 = ctx.now();
            let global = shared.read_global_events(ctx, stats);
            let all_slots: Vec<usize> = (0..shared.clients.capacity()).collect();
            let index = shared.build_interest_index(ctx, istats);
            let iframe = index
                .as_ref()
                .map(|ix| shared.match_interest(ctx, &all_slots, ix, istats));
            shared.reply_for_slots(
                ctx,
                port,
                &all_slots,
                &global,
                frame_no,
                stats,
                true,
                iframe.as_ref(),
                istats,
            );
            shared.clear_global_events(ctx, stats);
            stats.breakdown.add(Bucket::Reply, ctx.now() - t0);
            moves
        };
        let moves = if shared.catch_panics {
            // Supervised dedicated arena: a panicking frame must fate
            // only this runtime, not the whole fabric. World state may
            // be mid-mutation, so stop serving cleanly rather than
            // continue on a possibly-inconsistent world; results are
            // still published below.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                frame_body(&mut stats, &mut istats)
            })) {
                Ok(moves) => moves,
                Err(_) => {
                    stats.panics_caught += 1;
                    // A fabric lock leaked by the unwound frame would
                    // wedge its peers; make the witness report it.
                    if let Some(w) = ctx.fabric().witness() {
                        w.on_unwind(ctx.id(), ctx.now());
                    }
                    break;
                }
            }
        } else {
            frame_body(&mut stats, &mut istats)
        };

        stats.frames += 1;
        frames.frames += 1;
        frames.frame_ns_sum += ctx.now() - frame_start;
        frames.note_frame_requests(&[moves]);
        frames.leaf_count = shared.world.tree.leaf_count() as u64;
        timeline.push(FrameSample {
            start_ns: frame_start,
            duration_ns: ctx.now() - frame_start,
            participants: 1,
            requests: moves,
            requests_max: moves,
            requests_min: moves,
            master: 0,
        });
    }

    stats.queue_dropped = ctx.fabric().port_dropped(port);
    // Host-side result sink, written once at task end; poison-tolerant
    // so a supervised panic elsewhere still lets results publish.
    // lockcheck: allow(raw-sync: host-side result sink, no fabric task blocks on it)
    let mut r = results.lock().unwrap_or_else(PoisonError::into_inner);
    r.threads = vec![stats];
    r.frames = frames;
    r.timeline = timeline;
    r.frame_count = frame_no as u64;
    r.leaf_count = shared.world.tree.leaf_count() as u64;
    r.interest = istats;
}
