//! The parallel server (paper §3).
//!
//! N worker threads, each with a private port and a static block of
//! player slots. Frames are separated by global synchronization
//! implemented with the fabric's mutex + condition variables (the
//! pthreads wait/signal primitives of §3.2):
//!
//! 1. The first thread out of `select` when no frame is in progress
//!    becomes the frame **master** and runs the world update; threads
//!    arriving while it runs wait at the world gate (*inter-frame
//!    wait*). Threads arriving after the gate opened missed the frame
//!    and wait for the frame-end signal.
//! 2. Participants drain their private request queues under the region
//!    locking policy.
//! 3. Participants wait for each other at the intra-frame barrier
//!    (*intra-frame wait*), then run the reply phase. The master also
//!    distributes the global state buffer to clients of threads that
//!    did not participate.
//! 4. The master waits for all participants to finish replying, clears
//!    the global state buffer, and signals frame end.

use std::cell::UnsafeCell;
use std::sync::{Arc, Mutex, PoisonError};

use parquake_fabric::{CondId, Fabric, LockId, Nanos, TaskCtx};
use parquake_interest::{EntityIndex, InterestStats};
use parquake_metrics::{Bucket, FrameSample, FrameStats, ThreadStats, Timeline};
use parquake_sim::GameWorld;

use crate::runtime::ServerShared;
use crate::{ServerConfig, ServerHandle, ServerKind, ServerResults};

struct CtrlState {
    in_frame: bool,
    world_done: bool,
    master: u32,
    participants: u32,
    participant_mask: u64,
    /// Participants that finished draining their request queues.
    req_done: u32,
    /// Participants that finished their reply phase.
    finished: u32,
    frame_no: u32,
    frame_start: Nanos,
    frame_stats: FrameStats,
    timeline: Timeline,
    /// Per-thread per-frame request counts / leaf masks (each thread
    /// writes only its own entry during the request phase).
    frame_reqs: Vec<u32>,
    frame_masks: Vec<u64>,
    /// This frame's shared interest index, built once by the thread
    /// that releases the intra-frame barrier (sweep modes only) and
    /// cloned by every participant on its way into the reply phase.
    entity_index: Option<Arc<EntityIndex>>,
    /// Aggregate interest-matching accounting, merged from each
    /// worker's private tallies at exit.
    interest: InterestStats,
    exited: u32,
}

/// Frame orchestration state, guarded by the fabric lock `lock`.
struct Ctrl {
    lock: LockId,
    world_cv: CondId,
    intra_cv: CondId,
    frame_end_cv: CondId,
    master_cv: CondId,
    state: UnsafeCell<CtrlState>,
}

// SAFETY: `state` is only accessed while holding the fabric `lock`
// (or, for the per-thread frame_reqs/frame_masks entries, by their
// owning thread during the request phase and the master at frame end).
unsafe impl Sync for Ctrl {}
unsafe impl Send for Ctrl {}

impl Ctrl {
    #[allow(clippy::mut_from_ref)]
    fn state(&self) -> &mut CtrlState {
        // SAFETY: see type-level invariant.
        unsafe { &mut *self.state.get() }
    }

    /// Enter the frame-control critical section. The ctrl lock sits
    /// above every region lock in the witness's layer order: it must
    /// never be requested while holding leaf/parent/global/client
    /// locks.
    // lockcheck: acquire-site
    fn enter(&self, ctx: &TaskCtx) {
        ctx.lock(self.lock);
    }

    /// Leave the frame-control critical section.
    // lockcheck: acquire-site
    fn exit(&self, ctx: &TaskCtx) {
        ctx.unlock(self.lock);
    }
}

/// Per-thread tallies that feed the shared FrameStats at exit.
#[derive(Default)]
struct WaitTallies {
    interwait_world_ns: Nanos,
    interwait_frame_ns: Nanos,
    frames_waited_on_world: u64,
}

/// Spawn the parallel server's worker tasks onto `fabric`.
pub fn spawn_parallel(
    fabric: &Arc<dyn Fabric>,
    cfg: ServerConfig,
    world: Arc<GameWorld>,
) -> ServerHandle {
    let ServerKind::Parallel { threads, locking } = cfg.kind else {
        unreachable!("spawn_parallel with non-parallel config");
    };
    assert!((1..=64).contains(&threads));
    let shared = Arc::new(ServerShared::new(
        fabric,
        &cfg,
        world,
        threads,
        Some(locking),
    ));
    let ctrl_lock = fabric.alloc_lock();
    if let Some(w) = fabric.witness() {
        w.classify(ctrl_lock, parquake_metrics::LockClass::Ctrl);
    }
    let ctrl = Arc::new(Ctrl {
        lock: ctrl_lock,
        world_cv: fabric.alloc_cond(),
        intra_cv: fabric.alloc_cond(),
        frame_end_cv: fabric.alloc_cond(),
        master_cv: fabric.alloc_cond(),
        state: UnsafeCell::new(CtrlState {
            in_frame: false,
            world_done: false,
            master: 0,
            participants: 0,
            participant_mask: 0,
            req_done: 0,
            finished: 0,
            frame_no: 0,
            frame_start: 0,
            frame_stats: FrameStats::new(),
            timeline: Timeline::default(),
            frame_reqs: vec![0; threads as usize],
            frame_masks: vec![0; threads as usize],
            entity_index: None,
            interest: InterestStats::default(),
            exited: 0,
        }),
    });
    let results = Arc::new(Mutex::new(ServerResults {
        threads: vec![ThreadStats::new(); threads as usize],
        ..ServerResults::default()
    }));
    let handle = ServerHandle {
        ports: shared.ports.clone(),
        results: results.clone(),
        slots_per_thread: shared.slots_per_thread,
    };
    // Request-phase protocol checking starts enabled; the master turns
    // it off/on around world updates.
    shared.set_checking(true);
    for t in 0..threads {
        let sh = shared.clone();
        let ct = ctrl.clone();
        let res = results.clone();
        fabric.spawn(
            &format!("server-{t}"),
            Some(t),
            Box::new(move |ctx| worker(ctx, t, &sh, &ct, &res)),
        );
    }
    handle
}

fn worker(
    ctx: &TaskCtx,
    t: u32,
    shared: &ServerShared,
    ctrl: &Ctrl,
    results: &Mutex<ServerResults>,
) {
    let port = shared.ports[t as usize];
    let mut stats = ThreadStats::new();
    let mut waits = WaitTallies::default();
    let mut istats = InterestStats::default();

    'frames: loop {
        // ---- S: select -------------------------------------------------
        let t0 = ctx.now();
        let readable = ctx.wait_readable(port, Some(shared.end_time));
        if !readable {
            // End-of-run drain tail: not part of the measured window.
            break 'frames;
        }
        stats.breakdown.add(Bucket::Idle, ctx.now() - t0);
        ctx.charge(shared.cost.select_op);

        // ---- Join the frame ---------------------------------------------
        ctrl.enter(ctx);
        let frame_no;
        {
            let st = ctrl.state();
            if !st.in_frame {
                // Become the master of a new frame.
                st.in_frame = true;
                st.world_done = false;
                st.master = t;
                st.participants = 1;
                st.participant_mask = 1 << t;
                st.req_done = 0;
                st.finished = 0;
                st.frame_no += 1;
                st.frame_start = ctx.now();
                frame_no = st.frame_no;
                ctrl.exit(ctx);

                // Optional request batching (paper §5.2): give other
                // threads' requests time to arrive and join the frame.
                if shared.frame_batch_ns > 0 {
                    let t0 = ctx.now();
                    ctx.sleep_until(t0 + shared.frame_batch_ns);
                    stats.breakdown.add(Bucket::Idle, ctx.now() - t0);
                }

                // P: world physics (master only).
                let t0 = ctx.now();
                shared.run_world_update(ctx, port, &mut stats, frame_no);
                stats.breakdown.add(Bucket::World, ctx.now() - t0);
                stats.mastered += 1;

                ctrl.enter(ctx);
                ctrl.state().world_done = true;
                ctx.cond_broadcast(ctrl.world_cv);
                ctrl.exit(ctx);
            } else if !st.world_done {
                // Join before the world gate opens.
                st.participants += 1;
                st.participant_mask |= 1 << t;
                frame_no = st.frame_no;
                let t0 = ctx.now();
                while !ctrl.state().world_done {
                    ctx.cond_wait(ctrl.world_cv, ctrl.lock);
                }
                let w = ctx.now() - t0;
                stats.breakdown.add(Bucket::InterWait, w);
                waits.interwait_world_ns += w;
                if w > 0 {
                    waits.frames_waited_on_world += 1;
                }
                ctrl.exit(ctx);
            } else {
                // Missed this frame: wait for it to end, then retry.
                let missed = st.frame_no;
                let t0 = ctx.now();
                while ctrl.state().in_frame && ctrl.state().frame_no == missed {
                    ctx.cond_wait(ctrl.frame_end_cv, ctrl.lock);
                }
                let w = ctx.now() - t0;
                stats.breakdown.add(Bucket::InterWait, w);
                waits.interwait_frame_ns += w;
                ctrl.exit(ctx);
                continue 'frames;
            }
        }
        stats.frames += 1;

        // ---- Rx/E: request processing ------------------------------------
        let mut frame_mask = 0u64;
        let moves = shared.drain_requests(ctx, t, port, &mut stats, &mut frame_mask);
        {
            // Publish per-frame tallies (own entry; no lock needed).
            let st = ctrl.state();
            st.frame_reqs[t as usize] = moves;
            st.frame_masks[t as usize] = frame_mask;
        }

        // ---- Intra-frame barrier ------------------------------------------
        ctrl.enter(ctx);
        {
            let st = ctrl.state();
            st.req_done += 1;
            if st.req_done == st.participants {
                // Barrier releaser: every participant has drained its
                // queue, so entity positions are quiescent until the
                // frame ends. Build this frame's shared interest index
                // now, before the broadcast, so peers only ever observe
                // it fully formed under the ctrl lock (sweep modes
                // only; `None` otherwise).
                st.entity_index = shared.build_interest_index(ctx, &mut istats);
                ctx.cond_broadcast(ctrl.intra_cv);
            } else {
                let t0 = ctx.now();
                while ctrl.state().req_done < ctrl.state().participants {
                    ctx.cond_wait(ctrl.intra_cv, ctrl.lock);
                }
                stats.breakdown.add(Bucket::IntraWait, ctx.now() - t0);
            }
        }
        let is_master = ctrl.state().master == t;
        let participant_mask = ctrl.state().participant_mask;
        let entity_index = ctrl.state().entity_index.clone();
        ctrl.exit(ctx);

        // ---- T/Tx: reply phase ---------------------------------------------
        let t0 = ctx.now();
        let global = shared.read_global_events(ctx, &mut stats);
        let mine = shared.owned_slots(t);
        // Each participant sweeps its own slot block against the shared
        // index — the match work parallelizes with the rest of the
        // reply phase.
        let iframe = entity_index
            .as_ref()
            .map(|ix| shared.match_interest(ctx, &mine, ix, &mut istats));
        shared.reply_for_slots(
            ctx,
            port,
            &mine,
            &global,
            frame_no,
            &mut stats,
            true,
            iframe.as_ref(),
            &mut istats,
        );
        if is_master {
            // The master updates the message buffers of clients whose
            // threads are not part of this frame (paper §3.3). Those
            // clients sent no requests this frame, so no replies are
            // built for them and the interest frame is irrelevant.
            for other in 0..shared.threads {
                if participant_mask & (1 << other) == 0 {
                    let theirs = shared.owned_slots(other);
                    shared.reply_for_slots(
                        ctx,
                        port,
                        &theirs,
                        &global,
                        frame_no,
                        &mut stats,
                        false,
                        None,
                        &mut istats,
                    );
                }
            }
        }
        stats.breakdown.add(Bucket::Reply, ctx.now() - t0);

        // ---- Frame end -------------------------------------------------------
        ctrl.enter(ctx);
        {
            let st = ctrl.state();
            st.finished += 1;
        }
        if is_master {
            let t0 = ctx.now();
            while ctrl.state().finished < ctrl.state().participants {
                ctx.cond_wait(ctrl.master_cv, ctrl.lock);
            }
            let w = ctx.now() - t0;
            stats.breakdown.add(Bucket::InterWait, w);
            waits.interwait_frame_ns += w;

            // Frame statistics over the participant set.
            let st = ctrl.state();
            let mut reqs = Vec::with_capacity(st.participants as usize);
            let mut masks = Vec::with_capacity(st.participants as usize);
            for i in 0..shared.threads {
                if st.participant_mask & (1 << i) != 0 {
                    reqs.push(st.frame_reqs[i as usize]);
                    masks.push(st.frame_masks[i as usize]);
                    st.frame_reqs[i as usize] = 0;
                    st.frame_masks[i as usize] = 0;
                }
            }
            st.frame_stats.frames += 1;
            st.frame_stats.frame_ns_sum += ctx.now() - st.frame_start;
            st.frame_stats.note_frame_requests(&reqs);
            st.frame_stats
                .note_frame_leaf_usage(&masks, shared.world.tree.leaf_count() as u64);
            st.timeline.push(FrameSample {
                start_ns: st.frame_start,
                duration_ns: ctx.now() - st.frame_start,
                participants: st.participants,
                requests: reqs.iter().sum(),
                requests_max: reqs.iter().copied().max().unwrap_or(0),
                requests_min: reqs.iter().copied().min().unwrap_or(0),
                master: st.master,
            });

            shared.clear_global_events(ctx, &mut stats);
            // Drop the frame's index so its memory is not pinned while
            // the server idles between frames.
            ctrl.state().entity_index = None;
            ctrl.state().in_frame = false;
            ctx.cond_broadcast(ctrl.frame_end_cv);
            ctrl.exit(ctx);
        } else {
            if ctrl.state().finished == ctrl.state().participants {
                ctx.cond_signal(ctrl.master_cv);
            }
            ctrl.exit(ctx);
        }
    }

    // ---- Run over: publish results -----------------------------------------
    ctrl.enter(ctx);
    let st = ctrl.state();
    st.frame_stats.interwait_world_ns += waits.interwait_world_ns;
    st.frame_stats.interwait_frame_ns += waits.interwait_frame_ns;
    st.frame_stats.frames_waited_on_world += waits.frames_waited_on_world;
    st.interest.merge(&istats);
    st.exited += 1;
    let last = st.exited == shared.threads;
    let frame_stats = if last {
        Some((
            st.frame_stats.clone(),
            st.timeline.clone(),
            st.interest.clone(),
        ))
    } else {
        None
    };
    let frame_count = st.frame_no as u64;
    ctrl.exit(ctx);

    stats.queue_dropped = ctx.fabric().port_dropped(port);
    // Host-side result sink, written once per thread at task end;
    // poison-tolerant so one supervised panic cannot eat peer results.
    // lockcheck: allow(raw-sync: host-side result sink, no fabric task blocks on it)
    let mut r = results.lock().unwrap_or_else(PoisonError::into_inner);
    r.threads[t as usize] = stats;
    if let Some((fs, tl, ist)) = frame_stats {
        r.frames = fs;
        r.timeline = tl;
        r.frame_count = frame_count;
        r.leaf_count = shared.world.tree.leaf_count() as u64;
        r.interest = ist;
    }
}
