//! The `parquake` game servers — the paper's contribution.
//!
//! Two server implementations share one simulation substrate:
//!
//! * [`seq`] — the **sequential server** (paper §2.1): one thread,
//!   select-driven frames of *world physics → request processing →
//!   reply processing*, no locks.
//! * [`par`] — the **parallel server** (paper §3): N worker threads,
//!   one private UDP-style port each, static block assignment of
//!   players to threads, frames separated by global synchronization
//!   (the first thread out of `select` becomes the frame *master* and
//!   runs the world update), and region locking over the areanode tree
//!   during request processing.
//!
//! Locking policies (paper §3.3 / §4.3) are selected by [`LockPolicy`]:
//!
//! * `Baseline` — conservative: short-range moves lock the leaves
//!   overlapping the (slightly inflated) move bounding box; any move
//!   with a long-range action locks the *entire map*.
//! * `Optimized` — long-range actions lock only the *directional* beam
//!   region (hitscan) or an *expanded* bounding box (thrown
//!   projectiles).
//!
//! All synchronization goes through a [`parquake_fabric::Fabric`], so
//! the same server runs on real threads or on the deterministic
//! virtual-time SMP simulator, and every lock wait and barrier wait is
//! measured in the paper's own breakdown taxonomy.

pub mod clients;
pub mod cost;
pub mod exec;
pub mod lifecycle;
pub mod par;
pub mod runtime;
pub mod seq;
pub mod visibility_reply;

use std::sync::{Arc, Mutex};

use parquake_fabric::{Fabric, Nanos, PortId};
use parquake_interest::InterestStats;
use parquake_metrics::{FrameStats, ThreadStats, Timeline};
use parquake_sim::GameWorld;

pub use cost::CostModel;
pub use lifecycle::LifecycleEvent;
pub use parquake_interest::InterestMode;

/// Which object-lock policy the parallel server uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockPolicy {
    /// Conservative locking (paper §3.3): whole-map locks for
    /// long-range interactions.
    Baseline,
    /// Game-knowledge locking (paper §4.3): expanded and directional
    /// bounding-box locks.
    Optimized,
    /// This reproduction's implementation of the paper's §5.1 future
    /// work ("restructuring move execution … to allow threads to lock
    /// regions once per request"): the optimized region for the whole
    /// request — motion box plus a conservatively pre-inflated action
    /// region — is computed up front and locked exactly once, so no
    /// leaf is ever re-locked within a request.
    OnePass,
}

/// How player slots map to server threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Assignment {
    /// The paper's measured scheme (§3.1): players are block-assigned
    /// to threads at connect time and never move.
    Static,
    /// The paper's §5.1 future work: every `period_frames` frames, the
    /// master re-clusters players by the areanode leaf they occupy and
    /// steers each client (via its replies) to the thread owning that
    /// region, so threads mostly lock disjoint regions.
    RegionAffine { period_frames: u32 },
}

/// Which server to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerKind {
    /// The original single-threaded server.
    Sequential,
    /// The multithreaded server.
    Parallel { threads: u32, locking: LockPolicy },
}

impl ServerKind {
    /// Number of server threads (1 for sequential).
    pub fn threads(&self) -> u32 {
        match self {
            ServerKind::Sequential => 1,
            ServerKind::Parallel { threads, .. } => *threads,
        }
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    pub kind: ServerKind,
    /// Stop serving at this fabric time.
    pub end_time: Nanos,
    /// Cost model for charged work.
    pub cost: CostModel,
    /// Enable the dynamic lock/claim protocol checkers (slower; on by
    /// default in debug builds).
    pub checking: bool,
    /// Request batching window (paper §5.2 future work): the frame
    /// master waits this long before the world update so that more
    /// threads join the frame instead of missing it. 0 = the paper's
    /// measured behaviour.
    pub frame_batch_ns: Nanos,
    /// Player-to-thread assignment scheme.
    pub assignment: Assignment,
    /// QuakeWorld-style delta compression of reply entity state
    /// (extension; off reproduces the paper's full-state replies).
    pub delta_compression: bool,
    /// How reply interest sets are computed: the paper's per-client
    /// scan, the batch DDM sweep, or the sweep shadowed by the
    /// brute-force oracle (extension).
    pub interest: InterestMode,
    /// Reclaim a slot whose client has been silent this long
    /// (a `Bye` is sent and the player despawned). 0 = never.
    pub client_timeout_ns: Nanos,
    /// Which arena this runtime is (multi-arena directories give each
    /// world instance its own id; standalone servers are arena 0). The
    /// id is echoed in every `ConnectAck` so clients learn their
    /// placement; arena 0 keeps the ack byte-identical to the
    /// pre-arena wire format.
    pub arena_id: u16,
    /// Control port for [`LifecycleEvent`] notifications (connect
    /// accepted / disconnect / inactivity reclaim / reject). `None`
    /// (the default) disables them; a multi-arena directory sets this
    /// so its occupancy ledger tracks server-side slot churn. Notices
    /// are sent uncharged, so game-path timing is unaffected.
    pub lifecycle_port: Option<PortId>,
    /// Run each frame behind `catch_unwind` so a panicking frame fates
    /// only this runtime instead of the whole fabric (supervised
    /// dedicated-arena directories set this). A caught panic ends the
    /// serving loop cleanly — results are still published — because a
    /// mid-frame panic may leave world state inconsistent. Off by
    /// default: the standalone servers keep the fail-fast behaviour.
    pub catch_panics: bool,
}

impl ServerConfig {
    pub fn new(kind: ServerKind, end_time: Nanos) -> ServerConfig {
        ServerConfig {
            kind,
            end_time,
            cost: CostModel::default(),
            checking: cfg!(debug_assertions),
            frame_batch_ns: 0,
            assignment: Assignment::Static,
            delta_compression: false,
            interest: InterestMode::Scan,
            client_timeout_ns: 0,
            arena_id: 0,
            lifecycle_port: None,
            catch_panics: false,
        }
    }
}

/// Results published by the server tasks when the run ends.
#[derive(Clone, Debug, Default)]
pub struct ServerResults {
    /// One entry per server thread.
    pub threads: Vec<ThreadStats>,
    /// Whole-server frame statistics.
    pub frames: FrameStats,
    /// Server frames executed.
    pub frame_count: u64,
    /// Leaf count of the areanode tree (for percentage denominators).
    pub leaf_count: u64,
    /// Per-frame time series (first ~4096 frames).
    pub timeline: Timeline,
    /// Batch interest-matching counters (all zero under
    /// [`InterestMode::Scan`]).
    pub interest: InterestStats,
}

impl ServerResults {
    /// Merged thread stats (sums).
    pub fn merged(&self) -> ThreadStats {
        let mut total = ThreadStats::new();
        for t in &self.threads {
            total.merge(t);
        }
        total
    }

    /// Average per-thread breakdown (the paper's per-config bar).
    pub fn average_breakdown(&self) -> parquake_metrics::Breakdown {
        parquake_metrics::Breakdown::average(self.threads.iter().map(|t| &t.breakdown))
    }
}

/// A spawned (not yet running) server: its request ports and the slot
/// where results will appear after `fabric.run()` completes.
pub struct ServerHandle {
    /// Request port of each server thread; clients of slot `s` must
    /// send to `ports[thread_of(s)]`.
    pub ports: Vec<PortId>,
    /// Filled in when the server tasks finish.
    pub results: Arc<Mutex<ServerResults>>,
    /// Player-slot → thread assignment (block partition, paper §3.1).
    pub slots_per_thread: u32,
}

impl ServerHandle {
    /// The thread that owns player slot `slot`.
    pub fn thread_of(&self, slot: u32) -> u32 {
        (slot / self.slots_per_thread).min(self.ports.len() as u32 - 1)
    }

    /// The port to which slot `slot`'s requests must go.
    pub fn port_of(&self, slot: u32) -> PortId {
        self.ports[self.thread_of(slot) as usize]
    }
}

/// Spawn the configured server onto `fabric`, serving `world`.
pub fn spawn_server(
    fabric: &Arc<dyn Fabric>,
    cfg: ServerConfig,
    world: Arc<GameWorld>,
) -> ServerHandle {
    match cfg.kind {
        ServerKind::Sequential => seq::spawn_sequential(fabric, cfg, world),
        ServerKind::Parallel { .. } => par::spawn_parallel(fabric, cfg, world),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_kind_threads() {
        assert_eq!(ServerKind::Sequential.threads(), 1);
        assert_eq!(
            ServerKind::Parallel {
                threads: 8,
                locking: LockPolicy::Baseline
            }
            .threads(),
            8
        );
    }

    #[test]
    fn handle_slot_assignment_is_block() {
        let handle = ServerHandle {
            ports: vec![0, 1, 2, 3],
            results: Arc::new(Mutex::new(ServerResults::default())),
            slots_per_thread: 40,
        };
        assert_eq!(handle.thread_of(0), 0);
        assert_eq!(handle.thread_of(39), 0);
        assert_eq!(handle.thread_of(40), 1);
        assert_eq!(handle.thread_of(159), 3);
        // Out-of-range slots clamp to the last thread.
        assert_eq!(handle.thread_of(1000), 3);
    }
}
