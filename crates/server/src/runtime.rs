//! Shared server runtime: the pieces both the sequential and parallel
//! servers compose — message handling, the world-update phase, the
//! reply phase, and the global state buffer.

use std::cell::UnsafeCell;
use std::sync::Arc;

use parquake_fabric::{Fabric, Nanos, PortId, TaskCtx};
use parquake_interest::oracle::{oracle_agrees, OracleScratch};
use parquake_interest::{match_viewers, EntityIndex, InterestFrame, InterestMode, InterestStats};
use parquake_math::Pcg32;
use parquake_metrics::ThreadStats;
use parquake_protocol::{
    ClientMessage, Decode, Encode, GameEvent, ServerMessage, MAX_EVENTS_PER_REPLY,
};
use parquake_sim::worldphase::run_world_phase;
use parquake_sim::{GameWorld, WorkCounters};

use crate::clients::{ClientTable, SlotState};
use crate::cost::CostModel;
use crate::exec::{execute_move, ExecEnv, RegionLocks};
use crate::lifecycle::LifecycleEvent;
use crate::visibility_reply::build_reply;
use crate::{Assignment, LockPolicy, ServerConfig};

/// Bound on each thread's inbound request queue. On overflow the
/// fabric drops the *oldest* queued datagram (freshest input wins,
/// like a full OS socket buffer under load); drops are counted and
/// surfaced as `ThreadStats::queue_dropped`.
pub const REQUEST_QUEUE_CAP: usize = 1024;

/// State shared by every server thread of one server instance.
pub struct ServerShared {
    pub world: Arc<GameWorld>,
    pub clients: ClientTable,
    pub locks: RegionLocks,
    pub cost: CostModel,
    pub policy: Option<LockPolicy>,
    pub end_time: Nanos,
    pub checking: bool,
    /// Request batching window (0 = off).
    pub frame_batch_ns: Nanos,
    /// Player-to-thread assignment scheme.
    pub assignment: Assignment,
    /// QuakeWorld-style delta compression of replies (extension).
    pub delta_compression: bool,
    /// How reply interest sets are computed (scan / sweep / sweep
    /// shadowed by the oracle).
    pub interest: InterestMode,
    /// Reclaim slots silent for this long (0 = never).
    pub client_timeout_ns: Nanos,
    /// Arena id echoed in every ConnectAck (0 for standalone servers).
    pub arena_id: u16,
    /// Catch frame panics instead of letting them kill the fabric.
    pub catch_panics: bool,
    /// Directory control port for lifecycle notices (`None` = off).
    pub lifecycle: Option<PortId>,
    pub threads: u32,
    pub slots_per_thread: u32,
    pub ports: Vec<PortId>,
    /// The global state buffer (paper §3.3): broadcast events appended
    /// during the world and request phases; guarded by
    /// `locks.global_lock`.
    global_events: UnsafeCell<Vec<GameEvent>>,
    /// World-phase RNG; only the frame master touches it.
    rng: UnsafeCell<Pcg32>,
    /// Time of the previous world update (master-only).
    last_world: UnsafeCell<Nanos>,
}

// SAFETY: interior state is guarded by the fabric global lock
// (global_events) or by the single-master phase protocol (rng,
// last_world).
unsafe impl Sync for ServerShared {}
unsafe impl Send for ServerShared {}

impl ServerShared {
    pub fn new(
        fabric: &Arc<dyn Fabric>,
        cfg: &ServerConfig,
        world: Arc<GameWorld>,
        threads: u32,
        policy: Option<LockPolicy>,
    ) -> ServerShared {
        let slots = world.max_players() as usize;
        let locks = RegionLocks::new(fabric, &world.tree, slots);
        let ports: Vec<PortId> = (0..threads)
            .map(|_| fabric.alloc_bounded_port(REQUEST_QUEUE_CAP))
            .collect();
        ServerShared {
            clients: ClientTable::new(slots),
            locks,
            cost: cfg.cost.clone(),
            policy,
            end_time: cfg.end_time,
            checking: cfg.checking && policy.is_some(),
            frame_batch_ns: cfg.frame_batch_ns,
            assignment: cfg.assignment,
            delta_compression: cfg.delta_compression,
            interest: cfg.interest,
            client_timeout_ns: cfg.client_timeout_ns,
            arena_id: cfg.arena_id,
            catch_panics: cfg.catch_panics,
            lifecycle: cfg.lifecycle_port,
            threads,
            slots_per_thread: (slots as u32).div_ceil(threads),
            ports,
            global_events: UnsafeCell::new(Vec::new()),
            rng: UnsafeCell::new(Pcg32::new(0x5EB0_0715, 99)),
            last_world: UnsafeCell::new(0),
            world,
        }
    }

    /// The static *home* block of a thread (connect-time assignment,
    /// §3.1). Under static assignment this is also the ownership set.
    pub fn own_slots(&self, thread: u32) -> std::ops::Range<usize> {
        let per = self.slots_per_thread as usize;
        let start = thread as usize * per;
        let end = (start + per).min(self.clients.capacity());
        start..end.max(start)
    }

    /// Slots this thread currently answers for. Under static assignment
    /// this is exactly the home block; under the region-affine scheme it
    /// follows the most recent processing thread.
    pub fn owned_slots(&self, thread: u32) -> Vec<usize> {
        match self.assignment {
            Assignment::Static => self
                .own_slots(thread)
                .filter(|&i| self.clients.slot(i).state != SlotState::Empty)
                .collect(),
            Assignment::RegionAffine { .. } => (0..self.clients.capacity())
                .filter(|&i| {
                    let s = self.clients.slot(i);
                    s.state != SlotState::Empty && s.owner == thread
                })
                .collect(),
        }
    }

    /// Is the dynamic assignment scheme active?
    #[inline]
    pub fn dynamic_assignment(&self) -> bool {
        matches!(self.assignment, Assignment::RegionAffine { .. })
    }

    pub fn exec_env(&self) -> ExecEnv<'_> {
        ExecEnv {
            world: &self.world,
            locks: &self.locks,
            cost: &self.cost,
            policy: self.policy,
            commit_log: None,
        }
    }

    /// Append events to the global state buffer under its lock.
    pub fn push_global_events(&self, ctx: &TaskCtx, stats: &mut ThreadStats, events: &[GameEvent]) {
        if events.is_empty() {
            return;
        }
        let waited = self.locks.acquire_global(ctx);
        stats.lock.global_buffer_ns += waited;
        // SAFETY: global_lock held.
        unsafe { (*self.global_events.get()).extend_from_slice(events) };
        self.locks.release_global(ctx);
    }

    /// Snapshot the global buffer (reply phase).
    pub fn read_global_events(&self, ctx: &TaskCtx, stats: &mut ThreadStats) -> Vec<GameEvent> {
        let waited = self.locks.acquire_global(ctx);
        stats.lock.global_buffer_ns += waited;
        // SAFETY: global_lock held.
        let copy = unsafe { (*self.global_events.get()).clone() };
        self.locks.release_global(ctx);
        copy
    }

    /// Clear the global buffer (frame end, master only, under lock).
    pub fn clear_global_events(&self, ctx: &TaskCtx, stats: &mut ThreadStats) {
        let waited = self.locks.acquire_global(ctx);
        stats.lock.global_buffer_ns += waited;
        // SAFETY: global_lock held.
        unsafe { (*self.global_events.get()).clear() };
        self.locks.release_global(ctx);
    }

    /// Fire-and-forget a lifecycle notice at the directory control
    /// port, if one is configured. Sent uncharged — the notice models
    /// an in-process queue append, not network traffic — so enabling
    /// lifecycle reporting never perturbs game-path timing.
    pub fn notify(
        &self,
        ctx: &TaskCtx,
        from: PortId,
        stats: &mut ThreadStats,
        event: LifecycleEvent,
    ) {
        if let Some(dir) = self.lifecycle {
            ctx.send(from, dir, event.to_bytes());
            stats.lifecycle_sent += 1;
        }
    }

    /// Toggle the dynamic protocol checkers (request phase on, world
    /// phase off — the master mutates freely by phase exclusivity).
    pub fn set_checking(&self, on: bool) {
        if self.checking {
            self.world.links.set_checking(on);
            self.world.store.set_checking(on);
        }
    }

    /// The world-update phase (master/sequential thread). Spawns
    /// pending connections, despawns leavers, reclaims timed-out
    /// slots (sending `Bye` from `port`), advances world physics,
    /// and appends the resulting events to the global buffer. Returns
    /// charged time via the fabric; the caller buckets it as `World`.
    pub fn run_world_update(
        &self,
        ctx: &TaskCtx,
        port: PortId,
        stats: &mut ThreadStats,
        frame_no: u32,
    ) {
        self.set_checking(false);
        let now = ctx.now();
        // SAFETY: master-only by the phase protocol.
        let rng = unsafe { &mut *self.rng.get() };
        let last = unsafe { &mut *self.last_world.get() };
        let dt = if *last == 0 { 30_000_000 } else { now - *last };
        *last = now;

        // Connection maintenance.
        for idx in 0..self.clients.capacity() {
            let slot = self.clients.slot(idx);
            match slot.state {
                SlotState::Pending => {
                    self.world.spawn_player(idx as u16, slot.client_id, rng);
                    slot.state = SlotState::Active;
                    slot.needs_ack = true;
                    slot.leaving = false;
                    slot.last_active = now;
                }
                SlotState::Active if slot.leaving => {
                    let client_id = slot.client_id;
                    self.world.despawn_player(idx as u16);
                    slot.state = SlotState::Empty;
                    slot.leaving = false;
                    slot.events.clear();
                    self.notify(
                        ctx,
                        port,
                        stats,
                        LifecycleEvent::Disconnected {
                            arena: self.arena_id,
                            client_id,
                        },
                    );
                }
                SlotState::Active
                    if self.client_timeout_ns > 0
                        && now.saturating_sub(slot.last_active) >= self.client_timeout_ns =>
                {
                    // Inactivity reclaim: tell the client it is gone
                    // (best effort — it may be, too) and free the slot.
                    let client_id = slot.client_id;
                    let bye = ServerMessage::Bye { client_id };
                    ctx.charge(self.cost.reply_base / 2);
                    ctx.send(port, slot.reply_port, bye.to_bytes());
                    self.world.despawn_player(idx as u16);
                    slot.state = SlotState::Empty;
                    slot.leaving = false;
                    slot.events.clear();
                    stats.timeouts += 1;
                    self.notify(
                        ctx,
                        port,
                        stats,
                        LifecycleEvent::Reclaimed {
                            arena: self.arena_id,
                            client_id,
                            at: now,
                        },
                    );
                }
                _ => {}
            }
        }

        let mut events = Vec::new();
        let mut work = WorkCounters::new();
        run_world_phase(
            &self.world,
            now,
            dt.min(250_000_000),
            rng,
            &mut events,
            &mut work,
        );

        // Region-affine reassignment (paper §5.1 future work): cluster
        // players by the areanode leaf they occupy and steer each client
        // to the thread owning that part of the world.
        if let Assignment::RegionAffine { period_frames } = self.assignment {
            if period_frames > 0 && frame_no % period_frames == 0 {
                self.recluster_players(ctx);
            }
        }

        ctx.charge(self.cost.world_base + self.cost.work_ns(&work));
        self.push_global_events(ctx, stats, &events);
        self.set_checking(true);
    }

    /// Sort active players by areanode leaf (spatial order) and cut the
    /// sorted list into `threads` contiguous groups: players sharing a
    /// region land on the same thread, so concurrent moves mostly lock
    /// disjoint leaves. Master-only (world phase).
    fn recluster_players(&self, ctx: &TaskCtx) {
        let mut keyed: Vec<(u32, usize)> = Vec::new();
        for idx in 0..self.clients.capacity() {
            let slot = self.clients.slot(idx);
            if slot.state != SlotState::Active {
                continue;
            }
            let ent = self.world.store.snapshot(idx as u16);
            keyed.push((ent.linked_node, idx));
        }
        if keyed.is_empty() {
            return;
        }
        keyed.sort_unstable();
        let per = keyed.len().div_ceil(self.threads as usize);
        for (rank, &(_leaf, idx)) in keyed.iter().enumerate() {
            let target = (rank / per) as u32;
            self.clients.slot(idx).desired_thread = target.min(self.threads - 1);
        }
        // Modelled cost: a sort + scan over the player list.
        ctx.charge(keyed.len() as u64 * 400);
    }

    /// Handle one decoded client message during request processing.
    /// Returns `true` if it was a move (counts toward per-frame request
    /// statistics).
    pub fn handle_message(
        &self,
        ctx: &TaskCtx,
        thread: u32,
        from_port: PortId,
        msg: ClientMessage,
        stats: &mut ThreadStats,
        frame_leaf_mask: &mut u64,
    ) -> bool {
        match msg {
            // The arena id was consumed by whatever routed this
            // Connect here (the arena directory's admission stage, or
            // nothing for a standalone server); the runtime itself IS
            // one arena and acks with its own id.
            ClientMessage::Connect { client_id, .. } => {
                let now = ctx.now();
                // Re-ack an existing slot (anywhere, in case the client
                // was steered) or claim a fresh one in the home block.
                let mut existing = None;
                for idx in 0..self.clients.capacity() {
                    let slot = self.clients.slot(idx);
                    if slot.state != SlotState::Empty && slot.client_id == client_id {
                        existing = Some(idx);
                        break;
                    }
                }
                if let Some(idx) = existing {
                    let slot = self.clients.slot(idx);
                    if slot.reply_port == from_port {
                        // Retry from the same endpoint: refresh and
                        // re-ack (the original ack may have been lost).
                        slot.last_active = now;
                        if slot.state == SlotState::Active {
                            slot.needs_ack = true;
                        }
                    } else if self.client_timeout_ns > 0
                        && now.saturating_sub(slot.last_active) >= self.client_timeout_ns / 2
                    {
                        // The old endpoint has gone quiet for half the
                        // inactivity window: accept the rebind (client
                        // genuinely moved — e.g. NAT rebinding).
                        slot.reply_port = from_port;
                        slot.last_active = now;
                        if slot.state == SlotState::Active {
                            slot.needs_ack = true;
                        }
                    } else {
                        // A different endpoint claiming a live session:
                        // reject instead of hijacking the slot.
                        stats.connect_rejected += 1;
                    }
                    return false;
                }
                let fresh = self
                    .own_slots(thread)
                    .find(|&idx| self.clients.slot(idx).state == SlotState::Empty);
                if let Some(idx) = fresh {
                    let slot = self.clients.slot(idx);
                    slot.client_id = client_id;
                    slot.reply_port = from_port;
                    slot.state = SlotState::Pending;
                    slot.owner = thread;
                    slot.desired_thread = thread;
                    slot.last_active = now;
                    let from = self.ports[thread as usize];
                    self.notify(
                        ctx,
                        from,
                        stats,
                        LifecycleEvent::Connected {
                            arena: self.arena_id,
                            client_id,
                            thread: thread as u16,
                        },
                    );
                } else {
                    // Home block full: the connect is dropped (the
                    // client will retry and may land elsewhere under
                    // dynamic steering).
                    stats.connect_rejected += 1;
                    let from = self.ports[thread as usize];
                    self.notify(
                        ctx,
                        from,
                        stats,
                        LifecycleEvent::Rejected {
                            arena: self.arena_id,
                            client_id,
                        },
                    );
                }
                false
            }
            ClientMessage::Disconnect { client_id } => {
                for idx in 0..self.clients.capacity() {
                    let slot = self.clients.slot(idx);
                    if slot.state == SlotState::Active && slot.client_id == client_id {
                        slot.leaving = true;
                    }
                }
                false
            }
            ClientMessage::Move { client_id, cmd } => {
                // Static assignment: the slot is in this thread's home
                // block. Dynamic assignment: the client may have been
                // steered here from any block, so scan everything.
                let range: Box<dyn Iterator<Item = usize>> = if self.dynamic_assignment() {
                    Box::new(0..self.clients.capacity())
                } else {
                    Box::new(self.own_slots(thread))
                };
                for idx in range {
                    let slot = self.clients.slot(idx);
                    if slot.state == SlotState::Active && slot.client_id == client_id {
                        // Prediction trailer handling, all before the
                        // move executes: opt-in is sticky, duplicates
                        // are dropped (applying a network duplicate
                        // would double-move the player), and sequence
                        // gaps disarm the client's divergence oracle by
                        // bumping the perturbation epoch.
                        if cmd.predict_ack.is_some() {
                            slot.predicts = true;
                            if slot.input_ack != 0 && cmd.seq <= slot.input_ack {
                                stats.inputs_deduped += 1;
                                slot.last_active = ctx.now();
                                return false;
                            }
                            if slot.input_ack != 0 && cmd.seq != slot.input_ack + 1 {
                                slot.input_perturb = slot.input_perturb.wrapping_add(1);
                                stats.input_gaps += 1;
                            }
                        }
                        let env = self.exec_env();
                        let outcome = execute_move(
                            &env,
                            ctx,
                            thread,
                            idx as u16,
                            &cmd,
                            stats,
                            frame_leaf_mask,
                        );
                        self.push_global_events(ctx, stats, &outcome.events);
                        // Slot bookkeeping: under dynamic assignment two
                        // threads can transiently process one client's
                        // moves in the same frame (port switch window),
                        // so serialize on the slot's buffer lock.
                        let dynamic = self.dynamic_assignment();
                        if dynamic {
                            let waited = self.locks.acquire_client(ctx, idx);
                            stats.lock.reply_buffer_ns += waited;
                        }
                        let slot = self.clients.slot(idx);
                        slot.requests_this_frame += 1;
                        slot.last_seq = cmd.seq;
                        slot.last_sent_at = cmd.sent_at;
                        slot.owner = thread;
                        slot.last_active = ctx.now();
                        if slot.predicts {
                            slot.input_ack = cmd.seq;
                            // Advance the reconciliation shadow with
                            // the pure movement kernel. The first
                            // trailered move (and the first after a
                            // restore) adopts the authoritative
                            // post-move state instead — there is no
                            // prior shadow to step from.
                            slot.predict_shadow = match slot.predict_shadow {
                                Some((pos, vel, on_ground)) => {
                                    let next = parquake_sim::step_world_only(
                                        &self.world.map,
                                        parquake_sim::PredictState {
                                            pos,
                                            vel,
                                            on_ground,
                                        },
                                        &cmd,
                                    );
                                    Some((next.pos, next.vel, next.on_ground))
                                }
                                None => {
                                    let e = self.world.store.snapshot(idx as u16);
                                    Some((e.pos, e.vel, e.on_ground))
                                }
                            };
                        }
                        if dynamic {
                            self.locks.release_client(ctx, idx);
                        }
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Drain and process this thread's request queue (the Rx/E loop).
    /// Returns the number of move requests processed.
    pub fn drain_requests(
        &self,
        ctx: &TaskCtx,
        thread: u32,
        port: PortId,
        stats: &mut ThreadStats,
        frame_leaf_mask: &mut u64,
    ) -> u32 {
        let mut moves = 0u32;
        loop {
            let t0 = ctx.now();
            let Some(raw) = ctx.try_recv(port) else {
                break;
            };
            ctx.charge(self.cost.recv);
            stats.datagrams += 1;
            let decoded = ClientMessage::from_bytes(&raw.payload);
            stats
                .breakdown
                .add(parquake_metrics::Bucket::Receive, ctx.now() - t0);
            match decoded {
                Ok(msg) => {
                    if self.handle_message(ctx, thread, raw.from, msg, stats, frame_leaf_mask) {
                        moves += 1;
                    }
                }
                // Malformed datagrams are dropped, like the original
                // server — but counted, so the gateway's accounting
                // identity can close.
                Err(_) => stats.decode_rejected += 1,
            }
        }
        moves
    }

    /// Build this frame's shared entity index for the batch interest
    /// sweep, charging the build to the calling thread. Returns `None`
    /// under [`InterestMode::Scan`]. Must run *after* the request
    /// phase (positions quiescent) and before any reply is built.
    pub fn build_interest_index(
        &self,
        ctx: &TaskCtx,
        istats: &mut InterestStats,
    ) -> Option<Arc<EntityIndex>> {
        if !self.interest.uses_sweep() {
            return None;
        }
        let mut work = WorkCounters::new();
        let index = EntityIndex::build(&self.world, &mut work);
        ctx.charge(self.cost.work_ns(&work));
        istats.frames += 1;
        Some(Arc::new(index))
    }

    /// Match the viewers among `slots` — Active slots with at least
    /// one request this frame, the exact set `reply_for_slots` builds
    /// replies for — against the shared index. Charges the match work
    /// to the calling thread.
    pub fn match_interest(
        &self,
        ctx: &TaskCtx,
        slots: &[usize],
        index: &EntityIndex,
        istats: &mut InterestStats,
    ) -> InterestFrame {
        let viewers: Vec<u16> = slots
            .iter()
            .filter(|&&idx| {
                let s = self.clients.slot(idx);
                s.state == SlotState::Active && s.requests_this_frame > 0
            })
            .map(|&idx| idx as u16)
            .collect();
        let mut work = WorkCounters::new();
        let frame = match_viewers(&self.world, index, &viewers, &mut work, istats);
        ctx.charge(self.cost.work_ns(&work));
        frame
    }

    /// Distribute the global state buffer into the message buffers of
    /// the slots in `range` (under per-player buffer locks), then send
    /// replies/acks for slots that need them. `frame` is the server
    /// frame number. `interest` carries this frame's precomputed
    /// interest sets (the sweep modes); `None` scans per client.
    #[allow(clippy::too_many_arguments)]
    pub fn reply_for_slots(
        &self,
        ctx: &TaskCtx,
        port: PortId,
        slots: &[usize],
        global: &[GameEvent],
        frame: u32,
        stats: &mut ThreadStats,
        send_replies: bool,
        interest: Option<&InterestFrame>,
        istats: &mut InterestStats,
    ) {
        let mut oracle_scratch = OracleScratch::default();
        for &idx in slots {
            let slot_state = self.clients.slot(idx).state;
            if slot_state != SlotState::Active {
                continue;
            }
            // Update the slot's message buffer from the global buffer.
            if !global.is_empty() {
                let waited = self.locks.acquire_client(ctx, idx);
                stats.lock.reply_buffer_ns += waited;
                let slot = self.clients.slot(idx);
                for ev in global {
                    slot.push_event(*ev);
                }
                ctx.charge(self.cost.event_append * global.len() as u64);
                self.locks.release_client(ctx, idx);
            }
            if !send_replies {
                continue;
            }
            let slot = self.clients.slot(idx);
            if slot.needs_ack {
                slot.needs_ack = false;
                let ack = ServerMessage::ConnectAck {
                    client_id: slot.client_id,
                    spawn: self.world.store.snapshot(idx as u16).pos,
                    arena: self.arena_id,
                };
                ctx.charge(self.cost.reply_base / 2);
                ctx.send(port, slot.reply_port, ack.to_bytes());
                stats.replies += 1;
            }
            if slot.requests_this_frame == 0 {
                continue;
            }
            // Build and send the reply.
            let pre = interest.and_then(|f| f.get(idx as u16));
            if self.interest.oracle() {
                if let Some(set) = pre {
                    // Shadow the sweep with the uncharged brute scan.
                    istats.oracle_checked += 1;
                    if !oracle_agrees(&self.world, idx as u16, set, &mut oracle_scratch) {
                        istats.oracle_mismatches += 1;
                    }
                }
            }
            let mut work = WorkCounters::new();
            let reply = {
                let waited = self.locks.acquire_client(ctx, idx);
                stats.lock.reply_buffer_ns += waited;
                let slot = self.clients.slot(idx);
                let take = slot.events.len().min(MAX_EVENTS_PER_REPLY);
                let events: Vec<GameEvent> = slot.events.drain(..take).collect();
                self.locks.release_client(ctx, idx);
                let steer = slot.desired_thread.min(u8::MAX as u32) as u8;
                build_reply(
                    &self.world,
                    idx as u16,
                    slot,
                    frame,
                    steer,
                    self.delta_compression,
                    events,
                    pre,
                    &mut work,
                )
            };
            if let ServerMessage::Reply { ref entities, .. } = reply {
                stats.reply_sizes.note(entities.len());
            }
            let bytes = reply.to_bytes();
            ctx.charge(
                self.cost.work_ns(&work)
                    + self.cost.reply_base
                    + self.cost.reply_byte * bytes.len() as u64,
            );
            let slot = self.clients.slot(idx);
            ctx.send(port, slot.reply_port, bytes);
            slot.requests_this_frame = 0;
            stats.replies += 1;
        }
    }

    /// Capture the connection identity of every occupied slot for a
    /// supervisor checkpoint. Quiescent contexts only (between frames,
    /// under the pool claim) — same contract as the world snapshot.
    pub fn snapshot_slots(&self) -> Vec<SlotSnapshot> {
        (0..self.clients.capacity())
            .filter_map(|idx| {
                let s = self.clients.slot(idx);
                (s.state != SlotState::Empty).then_some(SlotSnapshot {
                    idx: idx as u32,
                    state: s.state,
                    client_id: s.client_id,
                    reply_port: s.reply_port,
                    owner: s.owner,
                    desired_thread: s.desired_thread,
                    last_seq: s.last_seq,
                    predicts: s.predicts,
                    input_ack: s.input_ack,
                    input_perturb: s.input_perturb,
                })
            })
            .collect()
    }

    /// Rebuild the slot table from a checkpoint. Every slot is cleared
    /// first, then the snapshot entries are reinstated with:
    ///
    /// * `last_active = now` — restored clients get a fresh inactivity
    ///   window instead of inheriting pre-crash silence,
    /// * `needs_ack = true` for Active slots — the unsolicited
    ///   ConnectAck both re-synchronizes the client and serves as the
    ///   client-observable "your arena restarted" signal,
    /// * an empty delta baseline — the next reply carries full state,
    ///   since the client's acked view may postdate the checkpoint.
    ///
    /// Quiescent contexts only.
    pub fn restore_slots(&self, snaps: &[SlotSnapshot], now: Nanos) {
        // Live pre-crash perturbation epochs, by slot index. The slot
        // table survives the panic, and between the checkpoint and the
        // crash the live epoch may have advanced past the snapshot's
        // (collision bumps are not checkpointed). Reinstating from the
        // snapshot alone could then reissue an epoch the client has
        // already adopted, re-arming its divergence oracle against the
        // rewound world.
        let live_perturb: Vec<u32> = (0..self.clients.capacity())
            .map(|idx| self.clients.slot(idx).input_perturb)
            .collect();
        for idx in 0..self.clients.capacity() {
            let s = self.clients.slot(idx);
            s.state = SlotState::Empty;
            s.leaving = false;
            s.needs_ack = false;
            s.requests_this_frame = 0;
            s.events.clear();
            s.baseline.clear();
            s.predicts = false;
            s.input_ack = 0;
            s.input_perturb = 0;
            s.predict_shadow = None;
        }
        for snap in snaps {
            let idx = snap.idx as usize;
            if idx >= self.clients.capacity() {
                continue;
            }
            let s = self.clients.slot(idx);
            s.state = snap.state;
            s.client_id = snap.client_id;
            s.reply_port = snap.reply_port;
            s.owner = snap.owner;
            s.desired_thread = snap.desired_thread;
            s.last_seq = snap.last_seq;
            s.last_sent_at = 0;
            s.last_active = now;
            s.needs_ack = snap.state == SlotState::Active;
            // Prediction continuity across a restore: the restored
            // world state is NOT what pure input replay from the
            // client's ring would produce, so the perturbation epoch
            // is bumped past BOTH the checkpointed and the live
            // pre-crash value (disarming the client's divergence
            // oracle until it re-adopts server state) and the shadow
            // is dropped — the next trailered move re-seeds it from
            // the restored authoritative state.
            s.predicts = snap.predicts;
            s.input_ack = snap.input_ack;
            s.input_perturb = snap.input_perturb.max(live_perturb[idx]).wrapping_add(1);
            s.predict_shadow = None;
        }
    }
}

/// One occupied slot's connection identity, as stored in a supervisor
/// checkpoint. Gameplay fields (event queue, delta baseline, per-frame
/// counters) are deliberately absent: they are rebuilt on restore.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotSnapshot {
    /// Slot index in the client table.
    pub idx: u32,
    pub state: SlotState,
    pub client_id: u32,
    pub reply_port: PortId,
    pub owner: u32,
    pub desired_thread: u32,
    pub last_seq: u32,
    /// Prediction opt-in survives a restore; the restore path bumps
    /// `input_perturb` so the client's divergence oracle stands down
    /// until it re-adopts server state.
    pub predicts: bool,
    pub input_ack: u32,
    pub input_perturb: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerKind;
    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_fabric::FabricKind;

    fn shared(threads: u32) -> (Arc<dyn Fabric>, ServerShared) {
        let fabric = FabricKind::VirtualSmp(Default::default()).build();
        let map = Arc::new(MapGenConfig::small_arena(1).generate());
        let world = Arc::new(GameWorld::new(map, 4, 32));
        let cfg = ServerConfig::new(ServerKind::Sequential, 1_000_000_000);
        let s = ServerShared::new(&fabric, &cfg, world, threads, None);
        (fabric, s)
    }

    #[test]
    fn own_slots_partition_block_wise() {
        let (_f, s) = shared(4);
        assert_eq!(s.own_slots(0), 0..8);
        assert_eq!(s.own_slots(1), 8..16);
        assert_eq!(s.own_slots(3), 24..32);
        // Ranges cover everything exactly once.
        let total: usize = (0..4).map(|t| s.own_slots(t).len()).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn slot_snapshot_restore_reinstates_identity() {
        let (_f, s) = shared(2);
        {
            let slot = s.clients.slot(3);
            slot.state = SlotState::Active;
            slot.client_id = 77;
            slot.reply_port = 9;
            slot.owner = 0;
            slot.desired_thread = 1;
            slot.last_seq = 41;
            slot.last_active = 5;
            slot.predicts = true;
            slot.input_ack = 41;
            slot.input_perturb = 3;
            slot.predict_shadow = Some((
                parquake_math::Vec3::new(1.0, 2.0, 3.0),
                parquake_math::Vec3::ZERO,
                true,
            ));
            slot.events.push(parquake_protocol::GameEvent {
                kind: parquake_protocol::GameEventKind::Sound,
                a: 1,
                b: 2,
                pos: parquake_math::Vec3::ZERO,
            });
        }
        {
            let slot = s.clients.slot(20);
            slot.state = SlotState::Pending;
            slot.client_id = 88;
            slot.reply_port = 11;
            slot.owner = 1;
        }
        let snaps = s.snapshot_slots();
        assert_eq!(snaps.len(), 2);

        // Diverge: drop one client, admit an impostor, and let the
        // live perturbation epoch advance past the checkpoint (a
        // collision bump after the snapshot), then restore.
        s.clients.slot(3).state = SlotState::Empty;
        s.clients.slot(3).input_perturb = 9;
        s.clients.slot(6).state = SlotState::Active;
        s.restore_slots(&snaps, 1_000);

        let slot = s.clients.slot(3);
        assert_eq!(slot.state, SlotState::Active);
        assert_eq!(slot.client_id, 77);
        assert_eq!(slot.reply_port, 9);
        assert_eq!(slot.desired_thread, 1);
        assert_eq!(slot.last_seq, 41);
        assert_eq!(slot.last_active, 1_000, "fresh inactivity window");
        assert!(slot.needs_ack, "restored Active slots re-ack");
        assert!(slot.events.is_empty(), "queued events are rebuilt");
        assert!(slot.baseline.is_empty(), "delta baseline reset");
        assert!(slot.predicts, "prediction opt-in survives restore");
        assert_eq!(slot.input_ack, 41);
        assert_eq!(
            slot.input_perturb, 10,
            "restore bumps the epoch past the LIVE pre-crash value, not \
             just the checkpoint's — a reissued epoch would re-arm the \
             client's oracle against the rewound world"
        );
        assert_eq!(slot.predict_shadow, None, "shadow re-seeds from reality");

        let pending = s.clients.slot(20);
        assert_eq!(pending.state, SlotState::Pending);
        assert!(!pending.needs_ack, "Pending acks on spawn, not restore");

        assert_eq!(s.clients.slot(6).state, SlotState::Empty, "impostor gone");
    }

    #[test]
    fn own_slots_handles_uneven_division() {
        let fabric = FabricKind::VirtualSmp(Default::default()).build();
        let map = Arc::new(MapGenConfig::small_arena(1).generate());
        let world = Arc::new(GameWorld::new(map, 4, 10));
        let cfg = ServerConfig::new(ServerKind::Sequential, 1);
        let s = ServerShared::new(&fabric, &cfg, world, 3, None);
        let total: usize = (0..3).map(|t| s.own_slots(t).len()).sum();
        assert_eq!(total, 10);
        assert_eq!(s.own_slots(0), 0..4);
        assert_eq!(s.own_slots(2), 8..10);
    }
}
