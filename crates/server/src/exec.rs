//! Move execution under a region-locking policy (paper §2.3 + §3.3).
//!
//! This is the heart of the parallel server: for each move command it
//! computes the *bounding box of the move*, acquires the areanode
//! leaves overlapping it (in ascending id order — deadlock-free),
//! gathers candidate objects from the overlapped nodes' object lists
//! (short parent-node list locks), runs the motion simulation, relinks
//! the mover, and releases everything. Long-range actions run as a
//! second locking phase whose region depends on the policy:
//! the whole map under `Baseline`, a directional beam or expanded box
//! under `Optimized` (§4.3).
//!
//! The same executor drives the sequential server with `policy: None`
//! — no lock plan is computed and no lock calls are made, exactly like
//! the original single-threaded code path.

use parquake_areanode::{LeafSet, LinkTable, NodeId};
use parquake_fabric::{LockId, Nanos, TaskCtx};
use parquake_math::angles::Angles;
use parquake_math::{Aabb, Vec3};
use parquake_metrics::witness::LockClass;
use parquake_metrics::{Bucket, ThreadStats};
use parquake_protocol::{Buttons, GameEvent, GameEventKind, MoveCmd};
use parquake_sim::entity::EntityId;
use parquake_sim::interact::{
    directional_beam_box, launch_projectile, run_hitscan, EXPANDED_LOCK_MARGIN, HITSCAN_RANGE,
};
use parquake_sim::movement::{move_bounding_box, run_move, TouchEvent};
use parquake_sim::{GameWorld, WorkCounters};

use crate::cost::CostModel;
use crate::LockPolicy;

/// Extra margin added to every lock region so that any object
/// *intersecting* the query region is *fully covered* by the locked
/// leaves (the paper's "slightly larger region than necessary"). Full
/// coverage makes concurrent claims on one object impossible: every
/// thread that can reach the object must lock all leaves it overlaps,
/// so any two such threads share a leaf lock.
pub const LOCK_COVERAGE_MARGIN: f32 = 72.0;

/// Fabric lock ids and leaf-index mapping for one server instance.
///
/// Every lock of the region-locking protocol is acquired through the
/// `acquire_*`/`release_*` methods below — the **ordered-acquire API**.
/// The methods pair the fabric lock call with the `LinkTable` owner
/// bookkeeping so neither can be skipped, and they are the only lines
/// in `parquake-server` allowed to touch `ctx.lock`/`ctx.unlock`
/// directly (enforced by `parquake-lockcheck`; the `lockcheck:
/// acquire-site` pragmas below mark the sanctioned sites). Leaf locks
/// must be taken in ascending node-id order; the runtime witness
/// (`parquake-fabric::witness`) checks that ordering on every run in
/// which it is attached.
pub struct RegionLocks {
    /// One fabric lock per areanode (leaves = region locks, interior
    /// nodes = object-list locks).
    node_locks: Vec<LockId>,
    /// The global state buffer lock.
    global_lock: LockId,
    /// Per-player reply buffer locks.
    client_locks: Vec<LockId>,
    /// Dense leaf index per node id (u32::MAX for interior nodes).
    leaf_index: Vec<u32>,
}

impl RegionLocks {
    pub fn new(
        fabric: &std::sync::Arc<dyn parquake_fabric::Fabric>,
        tree: &parquake_areanode::AreanodeTree,
        slots: usize,
    ) -> RegionLocks {
        let node_locks: Vec<LockId> = (0..tree.node_count())
            .map(|_| fabric.alloc_lock())
            .collect();
        let mut leaf_index = vec![u32::MAX; tree.node_count()];
        for (i, &leaf) in tree.all_leaves().iter().enumerate() {
            leaf_index[leaf as usize] = i as u32;
        }
        let locks = RegionLocks {
            node_locks,
            global_lock: fabric.alloc_lock(),
            client_locks: (0..slots).map(|_| fabric.alloc_lock()).collect(),
            leaf_index,
        };
        // Tell the lock-order witness (when one is attached) what each
        // lock is. Leaf ranks are node ids: plans acquire leaves in
        // ascending node-id order.
        if let Some(w) = fabric.witness() {
            for (node, &lock) in locks.node_locks.iter().enumerate() {
                let class = if locks.leaf_index[node] != u32::MAX {
                    LockClass::Leaf { rank: node as u32 }
                } else {
                    LockClass::Parent { node: node as u32 }
                };
                w.classify(lock, class);
            }
            w.classify(locks.global_lock, LockClass::Global);
            for (slot, &lock) in locks.client_locks.iter().enumerate() {
                w.classify(lock, LockClass::Client { slot: slot as u32 });
            }
        }
        locks
    }

    #[inline]
    fn node_lock(&self, node: NodeId) -> LockId {
        self.node_locks[node as usize]
    }

    /// Bit for a leaf in the per-frame usage mask (trees are ≤ 64
    /// leaves for every configuration the paper sweeps).
    #[inline]
    pub fn leaf_bit(&self, node: NodeId) -> u64 {
        let idx = self.leaf_index[node as usize];
        debug_assert_ne!(idx, u32::MAX, "node {node} is not a leaf");
        if idx < 64 {
            1u64 << idx
        } else {
            0
        }
    }

    /// Acquire one leaf lock of an ordered plan (callers iterate plans
    /// in ascending node-id order). Returns the blocked time.
    // lockcheck: acquire-site
    #[inline]
    pub fn acquire_leaf(&self, ctx: &TaskCtx, links: &LinkTable, task: u32, leaf: NodeId) -> Nanos {
        let waited = ctx.lock(self.node_lock(leaf));
        links.note_locked(leaf, task);
        waited
    }

    /// Release one leaf lock of a plan.
    // lockcheck: acquire-site
    #[inline]
    pub fn release_leaf(&self, ctx: &TaskCtx, links: &LinkTable, task: u32, leaf: NodeId) {
        links.note_unlocked(leaf, task);
        ctx.unlock(self.node_lock(leaf));
    }

    /// Acquire an interior ("parent") node's object-list lock for a
    /// short read/write section. Returns the blocked time.
    // lockcheck: acquire-site
    #[inline]
    pub fn acquire_parent(
        &self,
        ctx: &TaskCtx,
        links: &LinkTable,
        task: u32,
        node: NodeId,
    ) -> Nanos {
        let waited = ctx.lock(self.node_lock(node));
        links.note_locked(node, task);
        waited
    }

    /// Release a parent node's object-list lock.
    // lockcheck: acquire-site
    #[inline]
    pub fn release_parent(&self, ctx: &TaskCtx, links: &LinkTable, task: u32, node: NodeId) {
        links.note_unlocked(node, task);
        ctx.unlock(self.node_lock(node));
    }

    /// Acquire the global state-buffer lock. Returns the blocked time.
    // lockcheck: acquire-site
    #[inline]
    pub fn acquire_global(&self, ctx: &TaskCtx) -> Nanos {
        ctx.lock(self.global_lock)
    }

    /// Release the global state-buffer lock.
    // lockcheck: acquire-site
    #[inline]
    pub fn release_global(&self, ctx: &TaskCtx) {
        ctx.unlock(self.global_lock)
    }

    /// Acquire one client's reply-buffer lock. Returns the blocked
    /// time.
    // lockcheck: acquire-site
    #[inline]
    pub fn acquire_client(&self, ctx: &TaskCtx, slot: usize) -> Nanos {
        ctx.lock(self.client_locks[slot])
    }

    /// Release a client's reply-buffer lock.
    // lockcheck: acquire-site
    #[inline]
    pub fn release_client(&self, ctx: &TaskCtx, slot: usize) {
        ctx.unlock(self.client_locks[slot])
    }
}

/// Everything `execute_move` needs from its server.
pub struct ExecEnv<'a> {
    pub world: &'a GameWorld,
    pub locks: &'a RegionLocks,
    pub cost: &'a CostModel,
    /// `None` = sequential execution (no locking at all).
    pub policy: Option<LockPolicy>,
    /// Schedule-exploration hook: when set, every move is recorded at
    /// its serialization point (just after its phase-A region locks are
    /// all held). Conflicting short-range moves overlap in at least one
    /// held leaf, so the recorded order is a valid linearization that a
    /// sequential replay can follow. `None` in production servers.
    pub commit_log: Option<&'a CommitLog>,
}

/// Order in which moves passed their serialization point, recorded by
/// the schedule-exploration suite (see [`ExecEnv::commit_log`]).
#[derive(Default)]
pub struct CommitLog {
    // Host-level observation buffer, not part of the simulated locking
    // protocol (tasks are serialized on the virtual fabric anyway).
    // The waivers sit on the acquisition sites in `note`/`take` below.
    entries: std::sync::Mutex<Vec<CommitEntry>>,
}

/// One recorded serialization point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitEntry {
    /// Server task that executed the move.
    pub task: u32,
    /// Player slot the move belongs to.
    pub slot: u16,
    /// The move's sequence number within its slot's stream.
    pub seq: u32,
}

impl CommitLog {
    pub fn new() -> CommitLog {
        CommitLog::default()
    }

    fn note(&self, task: u32, slot: u16, seq: u32) {
        // lockcheck: allow(raw-sync: host-level observation buffer for schedule exploration)
        let mut e = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        e.push(CommitEntry { task, slot, seq });
    }

    /// Drain the recorded order.
    pub fn take(&self) -> Vec<CommitEntry> {
        // lockcheck: allow(raw-sync: host-level observation buffer for schedule exploration)
        let mut e = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        std::mem::take(&mut *e)
    }
}

/// Execute one move command for the player in `slot`. Returns the
/// broadcastable events it produced (the caller flushes them to the
/// global buffer) and updates `stats` and the per-frame leaf usage
/// mask. `task` identifies the server thread for the protocol checkers.
#[allow(clippy::too_many_arguments)]
pub fn execute_move(
    env: &ExecEnv<'_>,
    ctx: &TaskCtx,
    task: u32,
    slot: u16,
    cmd: &MoveCmd,
    stats: &mut ThreadStats,
    frame_leaf_mask: &mut u64,
) -> ExecOutcome {
    let mover = env.world.player_slot(slot);
    let me = env.world.store.snapshot(mover);
    if !me.active {
        return ExecOutcome::default();
    }
    let t_start = ctx.now();
    let mut lock_ns: Nanos = 0;
    let mut outcome = ExecOutcome::default();
    let mut request_leaf_events = 0u64;
    let mut request_distinct = LeafSet::new();

    ctx.charge(env.cost.move_base);
    let buttons = Buttons(cmd.buttons.0);
    let one_pass = env.policy == Some(LockPolicy::OnePass);

    // ---- Phase A: short-range motion -------------------------------
    let move_bbox = move_bounding_box(&me.abs_box(), me.vel, cmd.msec);
    let mut work = WorkCounters::new();

    // One-pass locking (paper §5.1 future work): pre-compute the union
    // of the motion region and a conservatively inflated action region
    // and acquire it once; no leaf is re-locked within the request.
    let initial_region = if one_pass && buttons.long_range() {
        move_bbox.union(&one_pass_action_region(env, &me, cmd, buttons))
    } else {
        move_bbox
    };

    let mut plan = LeafSet::new();
    lock_region(
        env,
        ctx,
        task,
        &initial_region,
        &mut plan,
        &mut lock_ns,
        stats,
        frame_leaf_mask,
        &mut request_leaf_events,
        &mut request_distinct,
    );
    if let Some(log) = env.commit_log {
        log.note(task, slot, cmd.seq);
    }

    let mut nodes = Vec::new();
    let mut candidates = Vec::new();
    gather_candidates(
        env,
        ctx,
        task,
        &move_bbox,
        &plan,
        &mut nodes,
        &mut candidates,
        &mut work,
        &mut lock_ns,
        stats,
    );

    // Claim everything we may mutate, run the motion, relink, release.
    if env.policy.is_some() {
        let t0 = ctx.now();
        ctx.charge(env.cost.claim_op * (candidates.len() as u64 + 1));
        lock_ns += ctx.now() - t0;
    }
    claim_all(env, task, mover, &candidates);
    let mut touched = Vec::new();
    run_move(
        env.world,
        task,
        mover,
        cmd,
        &candidates,
        ctx.now(),
        &mut touched,
        &mut work,
    );
    relink_locked(env, ctx, task, mover, &plan, &mut lock_ns, stats);
    release_all(env, task, mover, &candidates);
    if !one_pass {
        unlock_region(env, ctx, task, &plan, &mut lock_ns);
    }

    for t in &touched {
        match *t {
            TouchEvent::Pickup { item } => outcome.events.push(GameEvent {
                kind: GameEventKind::Pickup,
                a: mover,
                b: item,
                pos: env.world.store.snapshot(item).pos,
            }),
            TouchEvent::Teleport { dest } => outcome.events.push(GameEvent {
                kind: GameEventKind::Teleport,
                a: mover,
                b: 0,
                pos: dest,
            }),
            TouchEvent::PlayerContact { .. } => {}
        }
    }

    // ---- Phase B: long-range action ---------------------------------
    if buttons.long_range() {
        let after = env.world.store.snapshot(mover);
        let region = if one_pass {
            // Already covered by the initial acquisition; query the
            // post-move action region within it.
            action_region_for(env, &after, buttons, true)
        } else {
            action_region_for(env, &after, buttons, false)
        };
        let mut action_plan = LeafSet::new();
        if one_pass {
            action_plan.merge(&plan);
        } else {
            lock_region(
                env,
                ctx,
                task,
                &region,
                &mut action_plan,
                &mut lock_ns,
                stats,
                frame_leaf_mask,
                &mut request_leaf_events,
                &mut request_distinct,
            );
        }
        let mut action_nodes = Vec::new();
        let mut action_cands = Vec::new();
        gather_candidates(
            env,
            ctx,
            task,
            &region,
            &action_plan,
            &mut action_nodes,
            &mut action_cands,
            &mut work,
            &mut lock_ns,
            stats,
        );
        if env.policy.is_some() {
            let t0 = ctx.now();
            ctx.charge(env.cost.claim_op * (action_cands.len() as u64 + 1));
            lock_ns += ctx.now() - t0;
        }
        claim_all(env, task, mover, &action_cands);
        if buttons.has(Buttons::ATTACK) {
            if let Some(hit) = run_hitscan(env.world, task, mover, &action_cands, &mut work) {
                outcome.events.push(GameEvent {
                    kind: GameEventKind::Hit,
                    a: mover,
                    b: hit.victim,
                    pos: hit.pos,
                });
            }
        }
        if buttons.has(Buttons::THROW) {
            // The projectile slot is private to its shooter, so the
            // claim can never conflict; it must still precede mutation.
            let slot_ent = env.world.projectile_slot(slot);
            env.world.store.claim(slot_ent, task);
            if let Some(proj) = launch_projectile(env.world, task, slot, ctx.now(), &mut work) {
                relink_locked(env, ctx, task, proj, &action_plan, &mut lock_ns, stats);
            }
            env.world.store.release(slot_ent, task);
        }
        release_all(env, task, mover, &action_cands);
        unlock_region(env, ctx, task, &action_plan, &mut lock_ns);
    } else if one_pass {
        unlock_region(env, ctx, task, &plan, &mut lock_ns);
    }

    // ---- Accounting --------------------------------------------------
    ctx.charge(env.cost.work_ns(&work));
    let total = ctx.now() - t_start;
    stats.breakdown.add(Bucket::Lock, lock_ns);
    stats
        .breakdown
        .add(Bucket::Exec, total.saturating_sub(lock_ns));
    stats.requests += 1;
    if env.policy.is_some() {
        stats.lock.requests += 1;
        stats.lock.distinct_leaves += request_distinct.len() as u64;
        stats.lock.leaf_lock_events += request_leaf_events;
        stats.lock.leaf_capacity += env.world.tree.leaf_count() as u64;
    }
    outcome
}

/// Result of one move execution.
#[derive(Default)]
pub struct ExecOutcome {
    /// Broadcastable events produced by this move.
    pub events: Vec<GameEvent>,
}

/// The lock/query region for a long-range action (paper §4.3).
/// `optimized_shape` forces the directional/expanded form (used by the
/// one-pass policy, whose region shapes follow the optimized rules).
fn action_region_for(
    env: &ExecEnv<'_>,
    me: &parquake_sim::Entity,
    buttons: Buttons,
    optimized_shape: bool,
) -> Aabb {
    match env.policy {
        Some(LockPolicy::Baseline) | None if !optimized_shape => {
            // Conservative: the entire map.
            env.world.map.bounds
        }
        _ => {
            if buttons.has(Buttons::ATTACK) {
                // Directional bounding-box locking for fully simulated
                // objects (hitscan).
                directional_beam_box(me.eye(), Angles::new(me.pitch, me.yaw, 0.0), HITSCAN_RANGE)
            } else {
                // Expanded bounding-box locking for objects completed
                // in the world phase (thrown projectiles).
                me.abs_box().inflated(Vec3::splat(EXPANDED_LOCK_MARGIN))
            }
        }
    }
}

/// Pre-motion action region for the one-pass policy: the optimized
/// region computed from the *command's* view angles at the pre-move
/// position, inflated by the maximum travel distance so it still covers
/// the post-move region.
fn one_pass_action_region(
    env: &ExecEnv<'_>,
    me: &parquake_sim::Entity,
    cmd: &MoveCmd,
    buttons: Buttons,
) -> Aabb {
    let _ = env;
    let slack = parquake_sim::movement::max_move_distance(cmd.msec) + 8.0;
    let region = if buttons.has(Buttons::ATTACK) {
        directional_beam_box(
            me.eye(),
            Angles::new(cmd.pitch, cmd.yaw, 0.0),
            HITSCAN_RANGE,
        )
    } else {
        me.abs_box().inflated(Vec3::splat(EXPANDED_LOCK_MARGIN))
    };
    region.inflated(Vec3::splat(slack))
}

/// Compute and acquire the ordered leaf lock plan for `region`.
#[allow(clippy::too_many_arguments)]
fn lock_region(
    env: &ExecEnv<'_>,
    ctx: &TaskCtx,
    task: u32,
    region: &Aabb,
    plan: &mut LeafSet,
    lock_ns: &mut Nanos,
    stats: &mut ThreadStats,
    frame_leaf_mask: &mut u64,
    request_leaf_events: &mut u64,
    request_distinct: &mut LeafSet,
) {
    let Some(_policy) = env.policy else {
        plan.clear();
        return;
    };
    let t0 = ctx.now();
    // Region determination is charged to locking (paper §4.1: "locking
    // is performed in recursive procedures that traverse the areanode
    // tree and the server needs to determine which regions to lock").
    let covered = region.inflated(Vec3::splat(LOCK_COVERAGE_MARGIN));
    let visits = env.world.tree.leaves_overlapping(&covered, plan);
    ctx.charge(visits as u64 * env.cost.areanode_visit);
    for &leaf in plan.ids() {
        ctx.charge(env.cost.lock_op);
        let waited = env.locks.acquire_leaf(ctx, &env.world.links, task, leaf);
        stats.lock.leaf_ns += waited;
        stats.lock.leaf_ops += 1;
        *frame_leaf_mask |= env.locks.leaf_bit(leaf);
        *request_leaf_events += 1;
        request_distinct.insert(leaf);
    }
    *lock_ns += ctx.now() - t0;
}

/// Release a leaf lock plan (reverse order, though any order is safe).
fn unlock_region(env: &ExecEnv<'_>, ctx: &TaskCtx, task: u32, plan: &LeafSet, lock_ns: &mut Nanos) {
    if env.policy.is_none() {
        return;
    }
    let t0 = ctx.now();
    for &leaf in plan.ids().iter().rev() {
        ctx.charge(env.cost.unlock_op);
        env.locks.release_leaf(ctx, &env.world.links, task, leaf);
    }
    *lock_ns += ctx.now() - t0;
}

/// Walk the areanode tree collecting candidate entities whose boxes
/// intersect `query` (paper §2.3 step 2). Leaf lists are read under the
/// already-held leaf locks; interior ("parent") lists under short
/// per-node locks.
#[allow(clippy::too_many_arguments)]
fn gather_candidates(
    env: &ExecEnv<'_>,
    ctx: &TaskCtx,
    task: u32,
    query: &Aabb,
    plan: &LeafSet,
    nodes: &mut Vec<NodeId>,
    out: &mut Vec<EntityId>,
    work: &mut WorkCounters,
    lock_ns: &mut Nanos,
    stats: &mut ThreadStats,
) {
    out.clear();
    let visits = env.world.tree.nodes_overlapping(query, nodes);
    work.areanode_visits += visits as u64;
    let mut raw: Vec<u32> = Vec::new();
    for &node in nodes.iter() {
        raw.clear();
        let is_leaf = env.world.tree.is_leaf(node);
        if env.policy.is_some() && !is_leaf {
            // Parent areanode: lock its object list for the read only.
            let t0 = ctx.now();
            ctx.charge(env.cost.lock_op);
            let waited = env.locks.acquire_parent(ctx, &env.world.links, task, node);
            stats.lock.parent_ns += waited;
            stats.lock.parent_ops += 1;
            env.world.links.extend_into(node, task, &mut raw);
            ctx.charge(env.cost.unlock_op);
            env.locks.release_parent(ctx, &env.world.links, task, node);
            *lock_ns += ctx.now() - t0;
        } else {
            if env.policy.is_some() {
                debug_assert!(plan.contains(node), "reading unlocked leaf {node}");
            }
            env.world.links.extend_into(node, task, &mut raw);
        }
        for &id in &raw {
            let id = id as EntityId;
            work.candidates += 1;
            let e = env.world.store.snapshot(id);
            if e.active && e.abs_box().intersects(query) {
                out.push(id);
            }
        }
    }
}

/// Claim the mover and every candidate for mutation checking.
fn claim_all(env: &ExecEnv<'_>, task: u32, mover: EntityId, candidates: &[EntityId]) {
    env.world.store.claim(mover, task);
    for &c in candidates {
        if c != mover {
            env.world.store.claim(c, task);
        }
    }
}

fn release_all(env: &ExecEnv<'_>, task: u32, mover: EntityId, candidates: &[EntityId]) {
    for &c in candidates {
        if c != mover {
            env.world.store.release(c, task);
        }
    }
    env.world.store.release(mover, task);
}

/// Relink an entity after motion. Both its old and new nodes lie within
/// the locked region (motion is bounded by the move bbox, which the
/// plan covers with margin); interior-node lists still take the short
/// parent lock.
fn relink_locked(
    env: &ExecEnv<'_>,
    ctx: &TaskCtx,
    task: u32,
    ent: EntityId,
    plan: &LeafSet,
    lock_ns: &mut Nanos,
    stats: &mut ThreadStats,
) {
    if env.policy.is_none() {
        env.world.relink_unlocked(ent);
        return;
    }
    let e = env.world.store.snapshot(ent);
    let new_node = env.world.tree.node_for_box(&e.abs_box());
    if !e.linked {
        // Fresh link (a just-launched projectile): insert only.
        link_into(env, ctx, task, ent, new_node, plan, lock_ns, stats, true);
        env.world.store.with_mut(ent, task, |x| {
            x.linked_node = new_node;
            x.linked = true;
        });
        return;
    }
    if new_node == e.linked_node {
        return;
    }
    link_into(
        env,
        ctx,
        task,
        ent,
        e.linked_node,
        plan,
        lock_ns,
        stats,
        false,
    );
    link_into(env, ctx, task, ent, new_node, plan, lock_ns, stats, true);
    env.world
        .store
        .with_mut(ent, task, |x| x.linked_node = new_node);
}

/// Insert (`insert = true`) or remove an entity from one node's object
/// list, taking the short parent lock when the node is interior. Leaves
/// must already be covered by the held lock plan.
#[allow(clippy::too_many_arguments)]
fn link_into(
    env: &ExecEnv<'_>,
    ctx: &TaskCtx,
    task: u32,
    ent: EntityId,
    node: NodeId,
    plan: &LeafSet,
    lock_ns: &mut Nanos,
    stats: &mut ThreadStats,
    insert: bool,
) {
    let is_leaf = env.world.tree.is_leaf(node);
    if is_leaf {
        debug_assert!(plan.contains(node), "relink through unlocked leaf {node}");
        if insert {
            env.world.links.push(node, task, ent as u32);
        } else {
            env.world.links.remove(node, task, ent as u32);
        }
    } else {
        let t0 = ctx.now();
        ctx.charge(env.cost.lock_op);
        let waited = env.locks.acquire_parent(ctx, &env.world.links, task, node);
        stats.lock.parent_ns += waited;
        stats.lock.parent_ops += 1;
        if insert {
            env.world.links.push(node, task, ent as u32);
        } else {
            env.world.links.remove(node, task, ent as u32);
        }
        ctx.charge(env.cost.unlock_op);
        env.locks.release_parent(ctx, &env.world.links, task, node);
        *lock_ns += ctx.now() - t0;
    }
}
