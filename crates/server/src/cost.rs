//! The modelled CPU cost of server work.
//!
//! The virtual-time fabric advances a thread's clock only through
//! `charge()`; this module converts the raw work counters reported by
//! the simulation into nanoseconds of modelled Pentium-4-Xeon-1.4GHz
//! time. The constants were calibrated once against the paper's
//! sequential measurements (§4.1: reply processing ≈ 2× request
//! processing at 64–128 players, world update < 5%, sequential
//! saturation between 128 and 144 players); everything else — lock
//! contention, waits, saturation knees for other configurations —
//! emerges from running the actual algorithm.
//!
//! On the real-thread fabric the same charges are burned as spin time,
//! so workload *shape* is preserved across fabrics.

use parquake_fabric::Nanos;
use parquake_sim::WorkCounters;

/// Per-operation modelled costs, in nanoseconds.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Per BSP node visited during a collision trace.
    pub trace_step: Nanos,
    /// Per swept/overlap test against a candidate object.
    pub object_test: Nanos,
    /// Per slide-move integration substep.
    pub substep: Nanos,
    /// Per candidate gathered from areanode object lists.
    pub candidate: Nanos,
    /// Per areanode tree node visited.
    pub areanode_visit: Nanos,
    /// Per entity encoded into a reply.
    pub encoded_entity: Nanos,
    /// Per entity examined for visibility.
    pub visibility_check: Nanos,
    /// Per batch interest-matching step (endpoint sort comparison,
    /// merge advance, broad-phase range visit). Cheap relative to a
    /// full visibility check: the sweep touches sorted floats, not
    /// entity snapshots.
    pub interest_step: Nanos,
    /// Per interaction applied (pickup, hit, teleport…).
    pub interaction: Nanos,
    /// Fixed cost of executing one move command (parse, setup).
    pub move_base: Nanos,
    /// Receiving + parsing one datagram (recvfrom syscall).
    pub recv: Nanos,
    /// Forming + sending one reply (sendto syscall).
    pub reply_base: Nanos,
    /// Per byte of reply payload.
    pub reply_byte: Nanos,
    /// Determining the region to lock + the lock library call
    /// (charged under the Lock bucket; the paper attributes region
    /// determination to locking overhead, §4.1).
    pub lock_op: Nanos,
    /// Unlock library call.
    pub unlock_op: Nanos,
    /// Fixed world-update cost per frame.
    pub world_base: Nanos,
    /// Select/wakeup syscall overhead per frame participation.
    pub select_op: Nanos,
    /// Appending one broadcast event to a client's message buffer.
    pub event_append: Nanos,
    /// Per-object synchronization bookkeeping while holding region
    /// locks (claim/ownership tracking; parallel builds only). Grows
    /// with player density, which is what drives the paper's rising
    /// single-thread parallelization overhead (§4.1).
    pub claim_op: Nanos,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            trace_step: 310,
            object_test: 250,
            substep: 1_100,
            candidate: 170,
            areanode_visit: 290,
            encoded_entity: 1_600,
            visibility_check: 200,
            interest_step: 25,
            interaction: 1_500,
            move_base: 11_000,
            recv: 6_000,
            reply_base: 23_000,
            reply_byte: 12,
            lock_op: 1_500,
            unlock_op: 700,
            world_base: 25_000,
            select_op: 3_000,
            event_append: 300,
            claim_op: 700,
        }
    }
}

impl CostModel {
    /// Total modelled time for a batch of simulation work.
    pub fn work_ns(&self, w: &WorkCounters) -> Nanos {
        w.trace_steps * self.trace_step
            + w.object_tests * self.object_test
            + w.substeps * self.substep
            + w.candidates * self.candidate
            + w.areanode_visits * self.areanode_visit
            + w.encoded_entities * self.encoded_entity
            + w.visibility_checks * self.visibility_check
            + w.interest_steps * self.interest_step
            + w.interactions * self.interaction
    }

    /// Scale every constant by `f` (sensitivity studies).
    pub fn scaled(&self, f: f64) -> CostModel {
        let s = |v: Nanos| ((v as f64) * f).round() as Nanos;
        CostModel {
            trace_step: s(self.trace_step),
            object_test: s(self.object_test),
            substep: s(self.substep),
            candidate: s(self.candidate),
            areanode_visit: s(self.areanode_visit),
            encoded_entity: s(self.encoded_entity),
            visibility_check: s(self.visibility_check),
            interest_step: s(self.interest_step),
            interaction: s(self.interaction),
            move_base: s(self.move_base),
            recv: s(self.recv),
            reply_base: s(self.reply_base),
            reply_byte: s(self.reply_byte),
            lock_op: s(self.lock_op),
            unlock_op: s(self.unlock_op),
            world_base: s(self.world_base),
            select_op: s(self.select_op),
            event_append: s(self.event_append),
            claim_op: s(self.claim_op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_ns_sums_components() {
        let cm = CostModel::default();
        let w = WorkCounters {
            trace_steps: 10,
            object_tests: 5,
            ..WorkCounters::new()
        };
        assert_eq!(cm.work_ns(&w), 10 * cm.trace_step + 5 * cm.object_test);
        assert_eq!(cm.work_ns(&WorkCounters::new()), 0);
    }

    #[test]
    fn scaling_is_uniform() {
        let cm = CostModel::default();
        let double = cm.scaled(2.0);
        assert_eq!(double.trace_step, cm.trace_step * 2);
        assert_eq!(double.reply_base, cm.reply_base * 2);
        let w = WorkCounters {
            candidates: 7,
            interactions: 2,
            ..WorkCounters::new()
        };
        assert_eq!(double.work_ns(&w), cm.work_ns(&w) * 2);
    }
}
