//! Lifecycle notifications from an arena runtime to its directory.
//!
//! A multi-arena director places clients but, until this protocol, never
//! learned when a placement *ended* anywhere but its own front door: the
//! server-side inactivity reclaim and at-arena `Disconnect`s were
//! invisible, so the director's occupancy ledger drifted full. Each
//! server thread now reports the four population-changing events on a
//! best-effort control port ([`crate::ServerConfig::lifecycle_port`]):
//!
//! * [`LifecycleEvent::Connected`] — a `Connect` claimed a fresh slot
//!   (carries the owning thread so out-of-band traffic can be routed to
//!   the slot's home block).
//! * [`LifecycleEvent::Disconnected`] — a client's `Disconnect` was
//!   honoured and its player despawned.
//! * [`LifecycleEvent::Reclaimed`] — the inactivity timeout evicted a
//!   silent client (a `Bye` was sent).
//! * [`LifecycleEvent::Rejected`] — a `Connect` found the thread's home
//!   block full and was turned away.
//! * [`LifecycleEvent::Migrated`] — the director moved a live slot to
//!   another arena (emitted by the directory itself, not a server
//!   thread, so downstream listeners — the UDP gateway's placement
//!   book, tests — learn about rehoming through the same channel).
//!
//! Notices are fire-and-forget and cost-free (they model an in-process
//! queue, not network traffic), so enabling them cannot perturb the
//! simulated timing of the game path; a standalone server simply leaves
//! `lifecycle_port` unset.

use parquake_fabric::Nanos;
use parquake_protocol::codec::{
    get_u16, get_u32, get_u64, get_u8, put_u16, put_u32, put_u64, put_u8,
};
use parquake_protocol::tags::{
    TAG_CONNECTED, TAG_DISCONNECTED, TAG_MIGRATED, TAG_RECLAIMED, TAG_REJECTED,
};
use parquake_protocol::{CodecError, Decode, Encode};

/// One population-changing event inside an arena runtime.
///
/// Tags 200–204 (declared in the central wire-tag registry,
/// [`parquake_protocol::tags`]) live far from the client (1–3) and
/// server (100–102) message tags, so a misdelivered datagram decodes
/// to a clean `BadTag` instead of a plausible message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// A `Connect` claimed a fresh slot on `thread`'s home block.
    Connected {
        arena: u16,
        client_id: u32,
        /// Server thread owning the claimed slot (static assignment).
        thread: u16,
    },
    /// A front-of-house `Disconnect` reached the arena and despawned
    /// the player.
    Disconnected { arena: u16, client_id: u32 },
    /// The inactivity timeout reclaimed the slot at fabric time `at`.
    Reclaimed {
        arena: u16,
        client_id: u32,
        /// When the reclaim ran (directory linger clocks key off this).
        at: Nanos,
    },
    /// A `Connect` was refused because the home block was full.
    Rejected { arena: u16, client_id: u32 },
    /// The director rehomed a live slot from `from_arena` to
    /// `to_arena` (cross-arena live migration).
    Migrated {
        from_arena: u16,
        to_arena: u16,
        client_id: u32,
        /// Server thread owning the slot at the destination.
        thread: u16,
    },
}

impl LifecycleEvent {
    /// The arena the event happened in — for a migration, the arena
    /// the client now lives in (the destination).
    pub fn arena(&self) -> u16 {
        match self {
            LifecycleEvent::Connected { arena, .. }
            | LifecycleEvent::Disconnected { arena, .. }
            | LifecycleEvent::Reclaimed { arena, .. }
            | LifecycleEvent::Rejected { arena, .. } => *arena,
            LifecycleEvent::Migrated { to_arena, .. } => *to_arena,
        }
    }

    /// The client the event is about.
    pub fn client_id(&self) -> u32 {
        match self {
            LifecycleEvent::Connected { client_id, .. }
            | LifecycleEvent::Disconnected { client_id, .. }
            | LifecycleEvent::Reclaimed { client_id, .. }
            | LifecycleEvent::Rejected { client_id, .. }
            | LifecycleEvent::Migrated { client_id, .. } => *client_id,
        }
    }
}

impl Encode for LifecycleEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LifecycleEvent::Connected {
                arena,
                client_id,
                thread,
            } => {
                put_u8(out, TAG_CONNECTED);
                put_u16(out, *arena);
                put_u32(out, *client_id);
                put_u16(out, *thread);
            }
            LifecycleEvent::Disconnected { arena, client_id } => {
                put_u8(out, TAG_DISCONNECTED);
                put_u16(out, *arena);
                put_u32(out, *client_id);
            }
            LifecycleEvent::Reclaimed {
                arena,
                client_id,
                at,
            } => {
                put_u8(out, TAG_RECLAIMED);
                put_u16(out, *arena);
                put_u32(out, *client_id);
                put_u64(out, *at);
            }
            LifecycleEvent::Rejected { arena, client_id } => {
                put_u8(out, TAG_REJECTED);
                put_u16(out, *arena);
                put_u32(out, *client_id);
            }
            LifecycleEvent::Migrated {
                from_arena,
                to_arena,
                client_id,
                thread,
            } => {
                put_u8(out, TAG_MIGRATED);
                put_u16(out, *from_arena);
                put_u16(out, *to_arena);
                put_u32(out, *client_id);
                put_u16(out, *thread);
            }
        }
    }
}

impl Decode for LifecycleEvent {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match get_u8(buf)? {
            TAG_CONNECTED => Ok(LifecycleEvent::Connected {
                arena: get_u16(buf)?,
                client_id: get_u32(buf)?,
                thread: get_u16(buf)?,
            }),
            TAG_DISCONNECTED => Ok(LifecycleEvent::Disconnected {
                arena: get_u16(buf)?,
                client_id: get_u32(buf)?,
            }),
            TAG_RECLAIMED => Ok(LifecycleEvent::Reclaimed {
                arena: get_u16(buf)?,
                client_id: get_u32(buf)?,
                at: get_u64(buf)?,
            }),
            TAG_REJECTED => Ok(LifecycleEvent::Rejected {
                arena: get_u16(buf)?,
                client_id: get_u32(buf)?,
            }),
            TAG_MIGRATED => Ok(LifecycleEvent::Migrated {
                from_arena: get_u16(buf)?,
                to_arena: get_u16(buf)?,
                client_id: get_u32(buf)?,
                thread: get_u16(buf)?,
            }),
            t => Err(CodecError::BadTag("lifecycle event", t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_roundtrips() {
        let events = [
            LifecycleEvent::Connected {
                arena: 3,
                client_id: 0xDEAD_BEEF,
                thread: 2,
            },
            LifecycleEvent::Disconnected {
                arena: 0,
                client_id: 7,
            },
            LifecycleEvent::Reclaimed {
                arena: 65535,
                client_id: u32::MAX,
                at: 123_456_789_000,
            },
            LifecycleEvent::Rejected {
                arena: 1,
                client_id: 42,
            },
            LifecycleEvent::Migrated {
                from_arena: 2,
                to_arena: 0,
                client_id: 9_001,
                thread: 1,
            },
        ];
        for ev in events {
            let bytes = ev.to_bytes();
            let back = LifecycleEvent::from_bytes(&bytes).unwrap();
            assert_eq!(ev, back);
            assert_eq!(ev.arena(), back.arena());
            assert_eq!(ev.client_id(), back.client_id());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = LifecycleEvent::Rejected {
            arena: 1,
            client_id: 42,
        }
        .to_bytes();
        bytes.push(0);
        assert!(matches!(
            LifecycleEvent::from_bytes(&bytes),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn game_tags_do_not_decode_as_lifecycle() {
        // A stray client Connect (tag 1) must not alias a lifecycle event.
        for tag in [1u8, 2, 3, 100, 101, 102] {
            let bytes = [tag, 0, 0, 0, 0, 0, 0];
            assert!(matches!(
                LifecycleEvent::from_bytes(&bytes),
                Err(CodecError::BadTag("lifecycle event", t)) if t == tag
            ));
        }
    }
}
