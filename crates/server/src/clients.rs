//! The client/slot table.
//!
//! One slot per player. Slots are written by different threads at
//! different points of the frame, but never concurrently:
//!
//! * the owning thread (static block assignment) writes during *its*
//!   request and reply phases,
//! * the frame master transitions `Pending → Active` and applies
//!   disconnects during the world phase, when every other thread is
//!   barred from the slot by the phase invariants,
//! * the broadcast-event queue (`events`) is additionally protected by
//!   a per-slot fabric lock, because the master may append to slots of
//!   non-participating threads during the reply phase (paper §3.3).
//!
//! As elsewhere, this protocol is invisible to the borrow checker, so
//! slots live in `UnsafeCell`s behind a minimal API.

use std::cell::UnsafeCell;

use std::collections::HashMap;

use parquake_fabric::{Nanos, PortId};
use parquake_protocol::{EntityUpdate, GameEvent};

/// Cap on queued broadcast events per client (oldest dropped first),
/// mirroring the original's bounded reliable-message buffers.
pub const MAX_PENDING_EVENTS: usize = 128;

/// Connection state of a slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotState {
    Empty,
    /// Connect received; the next world phase will spawn the player.
    Pending,
    /// In the game.
    Active,
}

/// One player slot.
#[derive(Debug)]
pub struct Slot {
    pub state: SlotState,
    pub client_id: u32,
    /// Where replies go.
    pub reply_port: PortId,
    /// Thread currently responsible for this slot's replies: under
    /// static assignment the connect-time thread forever; under the
    /// dynamic region-affine extension, the thread that most recently
    /// processed a request for the slot.
    pub owner: u32,
    /// Thread the client is being steered to (sent in replies).
    pub desired_thread: u32,
    /// Send a ConnectAck in the next reply phase.
    pub needs_ack: bool,
    /// Disconnect requested; the next world phase clears the slot.
    pub leaving: bool,
    /// Move requests processed for this slot in the current frame.
    pub requests_this_frame: u32,
    /// Sequence number of the most recent processed move.
    pub last_seq: u32,
    /// `sent_at` echo of the most recent processed move.
    pub last_sent_at: u64,
    /// Fabric time of the last datagram accepted from this client
    /// (Connect or Move); drives the inactivity timeout.
    pub last_active: Nanos,
    /// Queued broadcast events (guarded by the slot's fabric lock).
    pub events: Vec<GameEvent>,
    /// Last entity state acked to this client (delta compression
    /// baseline; owner-thread access only, reply phase).
    pub baseline: HashMap<u16, EntityUpdate>,
    /// Whether this client opted into prediction (its `Move`s carry the
    /// input-seq trailer). Sticky once seen; replies to the slot then
    /// carry the reconciliation trailer.
    pub predicts: bool,
    /// Sequence number of the last *applied* move from a predicting
    /// client (0 = none yet). Lower-or-equal seqs are dropped as
    /// duplicates, jumps count as gaps.
    pub input_ack: u32,
    /// Perturbation epoch echoed to the client: bumped whenever this
    /// slot's state changed in a way pure input replay cannot reproduce
    /// (input gaps, external displacement caught by the shadow,
    /// checkpoint restores).
    pub input_perturb: u32,
    /// Reconciliation shadow: the pure movement kernel's (pos, vel,
    /// on_ground) after the applied inputs. Compared to authoritative
    /// state at reply time — any difference is a perturbation. `None`
    /// until the first trailered move (and after restores).
    pub predict_shadow: Option<(parquake_math::Vec3, parquake_math::Vec3, bool)>,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            state: SlotState::Empty,
            client_id: 0,
            reply_port: 0,
            owner: 0,
            desired_thread: 0,
            needs_ack: false,
            leaving: false,
            requests_this_frame: 0,
            last_seq: 0,
            last_sent_at: 0,
            last_active: 0,
            events: Vec::new(),
            baseline: HashMap::new(),
            predicts: false,
            input_ack: 0,
            input_perturb: 0,
            predict_shadow: None,
        }
    }

    /// Queue a broadcast event, dropping the oldest on overflow.
    pub fn push_event(&mut self, ev: GameEvent) {
        if self.events.len() >= MAX_PENDING_EVENTS {
            self.events.remove(0);
        }
        self.events.push(ev);
    }
}

/// The table of all player slots.
pub struct ClientTable {
    slots: Vec<UnsafeCell<Slot>>,
}

// SAFETY: access is serialized by the frame-phase protocol and the
// per-slot fabric locks described in the module docs.
unsafe impl Sync for ClientTable {}
unsafe impl Send for ClientTable {}

impl ClientTable {
    pub fn new(capacity: usize) -> ClientTable {
        ClientTable {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(Slot::empty()))
                .collect(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Access a slot. The caller must hold the right to access it under
    /// the phase protocol (owning thread in its phases, master during
    /// the world phase, or the slot's fabric lock for `events`).
    #[allow(clippy::mut_from_ref)]
    pub fn slot(&self, idx: usize) -> &mut Slot {
        // SAFETY: protocol — see module docs.
        unsafe { &mut *self.slots[idx].get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_math::Vec3;
    use parquake_protocol::GameEventKind;

    fn ev(a: u16) -> GameEvent {
        GameEvent {
            kind: GameEventKind::Sound,
            a,
            b: 0,
            pos: Vec3::ZERO,
        }
    }

    #[test]
    fn slots_start_empty() {
        let t = ClientTable::new(4);
        assert_eq!(t.capacity(), 4);
        for i in 0..4 {
            assert_eq!(t.slot(i).state, SlotState::Empty);
        }
    }

    #[test]
    fn slot_transitions() {
        let t = ClientTable::new(2);
        let s = t.slot(0);
        s.state = SlotState::Pending;
        s.client_id = 42;
        s.reply_port = 9;
        assert_eq!(t.slot(0).client_id, 42);
        t.slot(0).state = SlotState::Active;
        assert_eq!(t.slot(0).state, SlotState::Active);
        assert_eq!(t.slot(1).state, SlotState::Empty);
    }

    #[test]
    fn event_queue_caps_and_drops_oldest() {
        let t = ClientTable::new(1);
        let s = t.slot(0);
        for i in 0..(MAX_PENDING_EVENTS + 10) {
            s.push_event(ev(i as u16));
        }
        assert_eq!(s.events.len(), MAX_PENDING_EVENTS);
        // The first ten were dropped.
        assert_eq!(s.events[0].a, 10);
    }
}
