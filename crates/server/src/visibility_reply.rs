//! Reply construction: visibility-scoped entity updates plus queued
//! broadcast events, one [`ServerMessage::Reply`] per requesting client
//! per frame (paper §2.1).

use parquake_protocol::{
    EntityUpdate, GameEvent, ServerMessage, MAX_ADDITIONS_PER_REPLY, MAX_REMOVALS_PER_REPLY,
};
use parquake_sim::visibility::build_reply_entities;
use parquake_sim::{GameWorld, WorkCounters};

use crate::clients::Slot;

/// Has the entity changed enough since `prev` to resend it?
fn changed(prev: &EntityUpdate, cur: &EntityUpdate) -> bool {
    prev.state != cur.state
        || prev.kind != cur.kind
        || prev.pos.distance_sq(cur.pos) > 0.0625 // > 1/4 unit
        || (prev.yaw - cur.yaw).abs() > 1.0
}

/// Build the reply for `slot_idx`'s client. `assigned_thread` tells the
/// client which server thread (port) to address next. When `delta` is
/// set, only entities that changed since the client's baseline are
/// included, plus removal notices — QuakeWorld-style delta compression
/// (the slot's baseline is updated in place). Newly appearing entities
/// are windowed at [`MAX_ADDITIONS_PER_REPLY`]; the overflow stays out
/// of the baseline and is re-offered in the next reply, mirroring the
/// removal window.
///
/// `precomputed` is the viewer's interest set from the batch DDM
/// sweep, byte-identical to what the per-client scan would produce;
/// `None` runs the scan here (the paper's behaviour).
#[allow(clippy::too_many_arguments)]
pub fn build_reply(
    world: &GameWorld,
    slot_idx: u16,
    slot: &mut Slot,
    frame: u32,
    assigned_thread: u8,
    delta: bool,
    events: Vec<GameEvent>,
    precomputed: Option<&[EntityUpdate]>,
    work: &mut WorkCounters,
) -> ServerMessage {
    let visible = match precomputed {
        Some(set) => {
            // The sweep already paid the matching cost in bulk; the
            // per-reply encode charge stays identical to the scan's.
            work.encoded_entities += set.len() as u64;
            set.to_vec()
        }
        None => {
            let mut visible = Vec::new();
            let mut scratch = Vec::new();
            build_reply_entities(world, slot_idx, &mut visible, &mut scratch, work);
            visible
        }
    };

    let (entities, removed) = if delta {
        let mut out = Vec::new();
        let mut additions = 0usize;
        for u in &visible {
            match slot.baseline.get(&u.id) {
                Some(prev) if !changed(prev, u) => {}
                Some(_) => {
                    out.push(*u);
                    slot.baseline.insert(u.id, *u);
                }
                None => {
                    // A fresh arrival: windowed. Overflow additions are
                    // NOT baselined, so the next reply re-offers them.
                    if additions < MAX_ADDITIONS_PER_REPLY {
                        additions += 1;
                        out.push(*u);
                        slot.baseline.insert(u.id, *u);
                    }
                }
            }
        }
        // Entities that left the visible set.
        let visible_ids: std::collections::HashSet<u16> = visible.iter().map(|u| u.id).collect();
        let mut removed: Vec<u16> = slot
            .baseline
            .keys()
            .copied()
            .filter(|id| !visible_ids.contains(id))
            .take(MAX_REMOVALS_PER_REPLY)
            .collect();
        removed.sort_unstable();
        for id in &removed {
            slot.baseline.remove(id);
        }
        // Only the actually-encoded updates cost reply time.
        work.encoded_entities = work.encoded_entities - visible.len() as u64
            + out.len() as u64
            + removed.len() as u64 / 4;
        (out, removed)
    } else {
        (visible, Vec::new())
    };

    let me = world.store.snapshot(slot_idx);
    let predict = if slot.predicts {
        // Reconciliation check: the shadow is what the pure movement
        // kernel produced from the applied inputs alone. Any bit-level
        // difference from authoritative state means something the
        // client cannot replay happened (player collision, knockback,
        // teleport, respawn) — bump the perturbation epoch so its
        // divergence oracle stands down, and re-adopt reality.
        let actual = (me.pos, me.vel, me.on_ground);
        if let Some(shadow) = slot.predict_shadow {
            if shadow != actual {
                slot.input_perturb = slot.input_perturb.wrapping_add(1);
            }
        }
        slot.predict_shadow = Some(actual);
        Some(parquake_protocol::ReplyPredict {
            input_ack: slot.input_ack,
            perturb: slot.input_perturb,
            vel: me.vel,
            on_ground: me.on_ground,
        })
    } else {
        None
    };
    ServerMessage::Reply {
        client_id: slot.client_id,
        seq: slot.last_seq,
        sent_at_echo: slot.last_sent_at,
        frame,
        assigned_thread,
        origin: me.pos,
        delta,
        entities,
        removed,
        events,
        predict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::ClientTable;
    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_math::Pcg32;
    use parquake_protocol::EntityKind;
    use std::sync::Arc;

    #[test]
    fn reply_carries_echo_and_origin() {
        let map = Arc::new(MapGenConfig::small_arena(2).generate());
        let world = GameWorld::new(map, 4, 4);
        let mut rng = Pcg32::seeded(1);
        world.spawn_player(0, 7, &mut rng);
        let table = ClientTable::new(4);
        let slot = table.slot(0);
        slot.client_id = 7;
        slot.last_seq = 42;
        slot.last_sent_at = 1234;
        let mut work = WorkCounters::new();
        let msg = build_reply(&world, 0, slot, 9, 2, false, Vec::new(), None, &mut work);
        match msg {
            ServerMessage::Reply {
                client_id,
                seq,
                sent_at_echo,
                frame,
                assigned_thread,
                origin,
                ..
            } => {
                assert_eq!(client_id, 7);
                assert_eq!(seq, 42);
                assert_eq!(sent_at_echo, 1234);
                assert_eq!(frame, 9);
                assert_eq!(assigned_thread, 2);
                assert_eq!(origin, world.store.snapshot(0).pos);
            }
            _ => unreachable!(),
        }
        assert!(work.visibility_checks > 0);
    }

    fn delta_world() -> (GameWorld, ClientTable) {
        let map = Arc::new(MapGenConfig::small_arena(2).generate());
        let world = GameWorld::new(map, 4, 4);
        let mut rng = Pcg32::seeded(1);
        world.spawn_player(0, 7, &mut rng);
        let table = ClientTable::new(4);
        table.slot(0).client_id = 7;
        (world, table)
    }

    fn reply_parts(msg: ServerMessage) -> (Vec<EntityUpdate>, Vec<u16>) {
        match msg {
            ServerMessage::Reply {
                entities, removed, ..
            } => (entities, removed),
            _ => unreachable!(),
        }
    }

    /// A ghost baseline entry: an entity the client once saw that no
    /// longer exists in the world, so every delta reply wants to remove
    /// it. Ids start high enough never to collide with real entities.
    fn ghost(id: u16) -> EntityUpdate {
        EntityUpdate {
            id,
            kind: EntityKind::Item,
            state: 1,
            pos: parquake_math::Vec3::new(0.0, 0.0, 0.0),
            yaw: 0.0,
        }
    }

    /// The removal list is capped at [`MAX_REMOVALS_PER_REPLY`]; the
    /// overflow must stay in the baseline and go out in the *next*
    /// reply, never be dropped. Two consecutive replies must partition
    /// the ghost set: disjoint, and their union is everything.
    #[test]
    fn removal_truncation_carries_leftovers_to_the_next_reply() {
        use std::collections::HashSet;
        let (world, table) = delta_world();
        let slot = table.slot(0);
        let ghosts: HashSet<u16> = (1000..1000 + MAX_REMOVALS_PER_REPLY as u16 + 40).collect();
        for &id in &ghosts {
            slot.baseline.insert(id, ghost(id));
        }
        let mut work = WorkCounters::new();

        let (_, removed1) = reply_parts(build_reply(
            &world,
            0,
            slot,
            1,
            0,
            true,
            Vec::new(),
            None,
            &mut work,
        ));
        assert_eq!(removed1.len(), MAX_REMOVALS_PER_REPLY);
        // The leftovers are still tracked, so the client will hear
        // about them: nothing silently vanished from the baseline.
        let (_, removed2) = reply_parts(build_reply(
            &world,
            0,
            slot,
            2,
            0,
            true,
            Vec::new(),
            None,
            &mut work,
        ));
        assert_eq!(removed2.len(), 40);

        let first: HashSet<u16> = removed1.iter().copied().collect();
        let second: HashSet<u16> = removed2.iter().copied().collect();
        assert!(first.is_disjoint(&second), "a ghost was removed twice");
        let union: HashSet<u16> = first.union(&second).copied().collect();
        assert_eq!(union, ghosts, "removals must cover every ghost exactly");
        // And the ghosts are gone from the baseline for good: a third
        // reply removes nothing.
        let (_, removed3) = reply_parts(build_reply(
            &world,
            0,
            slot,
            3,
            0,
            true,
            Vec::new(),
            None,
            &mut work,
        ));
        assert!(removed3.is_empty());
    }

    /// A crowd world where far more entities are visible than the
    /// addition window admits: player 0 sees a full reply's worth.
    fn crowd_world() -> (GameWorld, ClientTable) {
        let map = Arc::new(MapGenConfig::open_hall(5).generate());
        let world = GameWorld::new(map, 4, 200);
        let mut rng = Pcg32::seeded(5);
        for i in 0..200 {
            world.spawn_player(i, i as u32, &mut rng);
        }
        let p0 = world.store.snapshot(0).pos;
        for i in 1..200u16 {
            world.store.with_mut(i, 0, |e| {
                e.pos = p0 + parquake_math::vec3::vec3((i as f32) * 3.0, 0.0, 0.0);
            });
        }
        let table = ClientTable::new(200);
        table.slot(0).client_id = 1;
        (world, table)
    }

    /// The addition list is windowed at [`MAX_ADDITIONS_PER_REPLY`];
    /// the overflow must stay *out* of the baseline and go out in the
    /// next reply, never be dropped. Consecutive replies must
    /// partition the arrivals: disjoint, and their union is the whole
    /// visible set. Mirrors the removal-window test.
    #[test]
    fn addition_truncation_carries_leftovers_to_the_next_reply() {
        use std::collections::HashSet;
        let (world, table) = crowd_world();
        let slot = table.slot(0);
        let mut work = WorkCounters::new();

        let full: HashSet<u16> = {
            let mut v = Vec::new();
            let mut s = Vec::new();
            build_reply_entities(&world, 0, &mut v, &mut s, &mut WorkCounters::new());
            v.iter().map(|u| u.id).collect()
        };
        assert!(full.len() > MAX_ADDITIONS_PER_REPLY, "crowd too small");

        let (sent1, _) = reply_parts(build_reply(
            &world,
            0,
            slot,
            1,
            0,
            true,
            Vec::new(),
            None,
            &mut work,
        ));
        assert_eq!(sent1.len(), MAX_ADDITIONS_PER_REPLY);
        let (sent2, _) = reply_parts(build_reply(
            &world,
            0,
            slot,
            2,
            0,
            true,
            Vec::new(),
            None,
            &mut work,
        ));
        let first: HashSet<u16> = sent1.iter().map(|u| u.id).collect();
        let second: HashSet<u16> = sent2.iter().map(|u| u.id).collect();
        assert!(first.is_disjoint(&second), "an arrival was sent twice");
        let union: HashSet<u16> = first.union(&second).copied().collect();
        assert_eq!(union, full, "additions must cover every arrival exactly");
        // Once everything is baselined, a quiet world sends nothing.
        let (sent3, _) = reply_parts(build_reply(
            &world,
            0,
            slot,
            3,
            0,
            true,
            Vec::new(),
            None,
            &mut work,
        ));
        assert!(sent3.is_empty());
    }

    /// Entities already in the baseline that *changed* are never held
    /// back by the addition window: a full window of arrivals plus one
    /// moved entity yields window + 1 updates.
    #[test]
    fn changed_baseline_entities_bypass_the_addition_window() {
        let (world, table) = crowd_world();
        let slot = table.slot(0);
        let mut work = WorkCounters::new();

        let (sent1, _) = reply_parts(build_reply(
            &world,
            0,
            slot,
            1,
            0,
            true,
            Vec::new(),
            None,
            &mut work,
        ));
        let moved = sent1[0].id;
        world.store.with_mut(moved, 0, |e| e.pos.x += 2.0);

        let (sent2, _) = reply_parts(build_reply(
            &world,
            0,
            slot,
            2,
            0,
            true,
            Vec::new(),
            None,
            &mut work,
        ));
        assert!(
            sent2.iter().any(|u| u.id == moved),
            "moved entity suppressed by the addition window"
        );
        assert_eq!(sent2.len(), MAX_ADDITIONS_PER_REPLY + 1);
    }

    /// A precomputed interest set (the sweep's output) must produce a
    /// byte-identical reply and identical encode accounting.
    #[test]
    fn precomputed_interest_sets_build_identical_replies() {
        use parquake_protocol::Encode;
        let (world, table) = delta_world();
        for idx in [0usize, 1] {
            let s = table.slot(idx);
            s.client_id = 7;
            s.last_seq = 42;
            s.last_sent_at = 1234;
        }
        let set = {
            let mut v = Vec::new();
            let mut s = Vec::new();
            build_reply_entities(&world, 0, &mut v, &mut s, &mut WorkCounters::new());
            v
        };
        let mut w_scan = WorkCounters::new();
        let mut w_pre = WorkCounters::new();
        for delta in [false, true] {
            let scan_msg = build_reply(
                &world,
                0,
                table.slot(0),
                1,
                0,
                delta,
                Vec::new(),
                None,
                &mut w_scan,
            );
            let pre_msg = build_reply(
                &world,
                0,
                table.slot(1),
                1,
                0,
                delta,
                Vec::new(),
                Some(&set),
                &mut w_pre,
            );
            assert_eq!(scan_msg.to_bytes(), pre_msg.to_bytes());
        }
        assert_eq!(w_scan.encoded_entities, w_pre.encoded_entities);
        assert_eq!(table.slot(0).baseline, table.slot(1).baseline);
    }

    /// An unchanged entity is sent once and then suppressed: the first
    /// delta reply installs the baseline, repeats ride on it.
    #[test]
    fn baseline_is_updated_exactly_once_per_entity() {
        let (world, table) = delta_world();
        let slot = table.slot(0);
        let mut work = WorkCounters::new();

        let (sent1, _) = reply_parts(build_reply(
            &world,
            0,
            slot,
            1,
            0,
            true,
            Vec::new(),
            None,
            &mut work,
        ));
        assert!(!sent1.is_empty(), "first delta reply seeds the baseline");
        for u in &sent1 {
            assert_eq!(
                slot.baseline.get(&u.id),
                Some(u),
                "baseline == what was sent"
            );
        }
        let baseline_after_first = slot.baseline.clone();

        // Nothing moved: the second reply must resend nothing and the
        // baseline must be byte-identical (no redundant re-insertions).
        let (sent2, _) = reply_parts(build_reply(
            &world,
            0,
            slot,
            2,
            0,
            true,
            Vec::new(),
            None,
            &mut work,
        ));
        assert!(sent2.is_empty(), "unchanged entities must be suppressed");
        assert_eq!(slot.baseline, baseline_after_first);
    }
}
