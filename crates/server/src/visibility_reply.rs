//! Reply construction: visibility-scoped entity updates plus queued
//! broadcast events, one [`ServerMessage::Reply`] per requesting client
//! per frame (paper §2.1).

use parquake_protocol::{EntityUpdate, GameEvent, ServerMessage, MAX_REMOVALS_PER_REPLY};
use parquake_sim::visibility::build_reply_entities;
use parquake_sim::{GameWorld, WorkCounters};

use crate::clients::Slot;

/// Has the entity changed enough since `prev` to resend it?
fn changed(prev: &EntityUpdate, cur: &EntityUpdate) -> bool {
    prev.state != cur.state
        || prev.kind != cur.kind
        || prev.pos.distance_sq(cur.pos) > 0.0625 // > 1/4 unit
        || (prev.yaw - cur.yaw).abs() > 1.0
}

/// Build the reply for `slot_idx`'s client. `assigned_thread` tells the
/// client which server thread (port) to address next. When `delta` is
/// set, only entities that changed since the client's baseline are
/// included, plus removal notices — QuakeWorld-style delta compression
/// (the slot's baseline is updated in place).
#[allow(clippy::too_many_arguments)]
pub fn build_reply(
    world: &GameWorld,
    slot_idx: u16,
    slot: &mut Slot,
    frame: u32,
    assigned_thread: u8,
    delta: bool,
    events: Vec<GameEvent>,
    work: &mut WorkCounters,
) -> ServerMessage {
    let mut visible = Vec::new();
    let mut scratch = Vec::new();
    build_reply_entities(world, slot_idx, &mut visible, &mut scratch, work);

    let (entities, removed) = if delta {
        let mut out = Vec::new();
        for u in &visible {
            match slot.baseline.get(&u.id) {
                Some(prev) if !changed(prev, u) => {}
                _ => {
                    out.push(*u);
                    slot.baseline.insert(u.id, *u);
                }
            }
        }
        // Entities that left the visible set.
        let visible_ids: std::collections::HashSet<u16> = visible.iter().map(|u| u.id).collect();
        let mut removed: Vec<u16> = slot
            .baseline
            .keys()
            .copied()
            .filter(|id| !visible_ids.contains(id))
            .take(MAX_REMOVALS_PER_REPLY)
            .collect();
        removed.sort_unstable();
        for id in &removed {
            slot.baseline.remove(id);
        }
        // Only the actually-encoded updates cost reply time.
        work.encoded_entities = work.encoded_entities - visible.len() as u64
            + out.len() as u64
            + removed.len() as u64 / 4;
        (out, removed)
    } else {
        (visible, Vec::new())
    };

    ServerMessage::Reply {
        client_id: slot.client_id,
        seq: slot.last_seq,
        sent_at_echo: slot.last_sent_at,
        frame,
        assigned_thread,
        origin: world.store.snapshot(slot_idx).pos,
        delta,
        entities,
        removed,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::ClientTable;
    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_math::Pcg32;
    use std::sync::Arc;

    #[test]
    fn reply_carries_echo_and_origin() {
        let map = Arc::new(MapGenConfig::small_arena(2).generate());
        let world = GameWorld::new(map, 4, 4);
        let mut rng = Pcg32::seeded(1);
        world.spawn_player(0, 7, &mut rng);
        let table = ClientTable::new(4);
        let slot = table.slot(0);
        slot.client_id = 7;
        slot.last_seq = 42;
        slot.last_sent_at = 1234;
        let mut work = WorkCounters::new();
        let msg = build_reply(&world, 0, slot, 9, 2, false, Vec::new(), &mut work);
        match msg {
            ServerMessage::Reply {
                client_id,
                seq,
                sent_at_echo,
                frame,
                assigned_thread,
                origin,
                ..
            } => {
                assert_eq!(client_id, 7);
                assert_eq!(seq, 42);
                assert_eq!(sent_at_echo, 1234);
                assert_eq!(frame, 9);
                assert_eq!(assigned_thread, 2);
                assert_eq!(origin, world.store.snapshot(0).pos);
            }
            _ => unreachable!(),
        }
        assert!(work.visibility_checks > 0);
    }
}
