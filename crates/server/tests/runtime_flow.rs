//! Runtime-level tests of the shared server machinery: message
//! handling, connection lifecycle, world updates and reply building,
//! driven directly (one fabric task, no bots).

use std::sync::{Arc, Mutex};

use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{Fabric, FabricKind};
use parquake_interest::InterestStats;
use parquake_metrics::ThreadStats;
use parquake_protocol::{ClientMessage, Decode, MoveCmd, ServerMessage};
use parquake_server::clients::SlotState;
use parquake_server::runtime::ServerShared;
use parquake_server::{Assignment, LockPolicy, ServerConfig, ServerKind};
use parquake_sim::GameWorld;

fn make_shared(
    threads: u32,
    players: u16,
    assignment: Assignment,
) -> (Arc<dyn Fabric>, Arc<ServerShared>) {
    make_shared_with_timeout(threads, players, assignment, 0)
}

fn make_shared_with_timeout(
    threads: u32,
    players: u16,
    assignment: Assignment,
    client_timeout_ns: u64,
) -> (Arc<dyn Fabric>, Arc<ServerShared>) {
    let fabric = FabricKind::VirtualSmp(Default::default()).build();
    let map = Arc::new(MapGenConfig::small_arena(9).generate());
    let world = Arc::new(GameWorld::new(map, 4, players));
    let cfg = ServerConfig {
        assignment,
        checking: false,
        client_timeout_ns,
        ..ServerConfig::new(
            ServerKind::Parallel {
                threads,
                locking: LockPolicy::Optimized,
            },
            10_000_000_000,
        )
    };
    let shared = Arc::new(ServerShared::new(
        &fabric,
        &cfg,
        world,
        threads,
        Some(LockPolicy::Optimized),
    ));
    (fabric, shared)
}

/// Run a closure inside a single fabric task and return its output.
fn in_task<R: Send + 'static>(
    fabric: &Arc<dyn Fabric>,
    f: impl FnOnce(&parquake_fabric::TaskCtx) -> R + Send + 'static,
) -> R {
    let out = Arc::new(Mutex::new(None));
    let o = out.clone();
    fabric.spawn(
        "driver",
        Some(0),
        Box::new(move |ctx| {
            *o.lock().unwrap() = Some(f(ctx));
        }),
    );
    fabric.run();
    let mut guard = out.lock().unwrap();
    guard.take().expect("task produced no output")
}

#[test]
fn connect_then_world_update_spawns_and_acks() {
    let (fabric, shared) = make_shared(2, 8, Assignment::Static);
    let client_port = fabric.alloc_port();
    let sh = shared.clone();
    let (state_after_connect, acked) = in_task(&fabric, move |ctx| {
        let mut stats = ThreadStats::new();
        let mut mask = 0u64;
        // Connect lands a Pending slot in thread 0's home block.
        let is_move = sh.handle_message(
            ctx,
            0,
            client_port,
            ClientMessage::Connect {
                client_id: 7,
                arena: 0,
            },
            &mut stats,
            &mut mask,
        );
        assert!(!is_move);
        let pending = sh.clients.slot(0).state;
        // World update transitions Pending -> Active and spawns.
        sh.run_world_update(ctx, sh.ports[0], &mut stats, 1);
        let active = sh.clients.slot(0).state == SlotState::Active
            && sh.clients.slot(0).needs_ack
            && sh.world.store.snapshot(0).active;
        // Reply phase sends the ack.
        let my_port = sh.ports[0];
        sh.reply_for_slots(
            ctx,
            my_port,
            &[0],
            &[],
            1,
            &mut stats,
            true,
            None,
            &mut InterestStats::default(),
        );
        // Let the modelled link deliver the datagram.
        ctx.sleep_until(ctx.now() + 2_000_000);
        let got_ack = ctx.try_recv(client_port).map(|m| {
            matches!(
                ServerMessage::from_bytes(&m.payload),
                Ok(ServerMessage::ConnectAck { client_id: 7, .. })
            )
        });
        (pending, got_ack == Some(true) && active)
    });
    assert_eq!(state_after_connect, SlotState::Pending);
    assert!(acked);
}

#[test]
fn move_is_processed_and_replied_with_echo() {
    let (fabric, shared) = make_shared(2, 8, Assignment::Static);
    let client_port = fabric.alloc_port();
    let sh = shared.clone();
    let echo = in_task(&fabric, move |ctx| {
        let mut stats = ThreadStats::new();
        let mut mask = 0u64;
        sh.handle_message(
            ctx,
            0,
            client_port,
            ClientMessage::Connect {
                client_id: 7,
                arena: 0,
            },
            &mut stats,
            &mut mask,
        );
        sh.run_world_update(ctx, sh.ports[0], &mut stats, 1);
        let cmd = MoveCmd {
            sent_at: 123456,
            forward: 320.0,
            ..MoveCmd::idle(42, 30)
        };
        let is_move = sh.handle_message(
            ctx,
            0,
            client_port,
            ClientMessage::Move { client_id: 7, cmd },
            &mut stats,
            &mut mask,
        );
        assert!(is_move);
        assert_eq!(stats.requests, 1);
        let my_port = sh.ports[0];
        sh.reply_for_slots(
            ctx,
            my_port,
            &[0],
            &[],
            1,
            &mut stats,
            true,
            None,
            &mut InterestStats::default(),
        );
        // Let the modelled link deliver the datagrams.
        ctx.sleep_until(ctx.now() + 2_000_000);
        // First message is the ack; second the reply.
        let mut echo = None;
        while let Some(m) = ctx.try_recv(client_port) {
            if let Ok(ServerMessage::Reply {
                seq, sent_at_echo, ..
            }) = ServerMessage::from_bytes(&m.payload)
            {
                echo = Some((seq, sent_at_echo));
            }
        }
        echo
    });
    assert_eq!(echo, Some((42, 123456)));
}

#[test]
fn unknown_client_moves_are_ignored() {
    let (fabric, shared) = make_shared(2, 8, Assignment::Static);
    let client_port = fabric.alloc_port();
    let sh = shared.clone();
    let processed = in_task(&fabric, move |ctx| {
        let mut stats = ThreadStats::new();
        let mut mask = 0u64;
        sh.handle_message(
            ctx,
            0,
            client_port,
            ClientMessage::Move {
                client_id: 999,
                cmd: MoveCmd::idle(1, 30),
            },
            &mut stats,
            &mut mask,
        )
    });
    assert!(!processed);
}

#[test]
fn connects_fill_home_block_then_stop() {
    // Thread 0 owns 4 of 8 slots; a fifth connect to it must be refused
    // (no Empty slot in the home block).
    let (fabric, shared) = make_shared(2, 8, Assignment::Static);
    let client_port = fabric.alloc_port();
    let sh = shared.clone();
    let states = in_task(&fabric, move |ctx| {
        let mut stats = ThreadStats::new();
        let mut mask = 0u64;
        for cid in 0..5u32 {
            sh.handle_message(
                ctx,
                0,
                client_port,
                ClientMessage::Connect {
                    client_id: 100 + cid,
                    arena: 0,
                },
                &mut stats,
                &mut mask,
            );
        }
        (0..8).map(|i| sh.clients.slot(i).state).collect::<Vec<_>>()
    });
    assert_eq!(
        states[..4],
        [
            SlotState::Pending,
            SlotState::Pending,
            SlotState::Pending,
            SlotState::Pending
        ]
    );
    assert_eq!(states[4..], [SlotState::Empty; 4]);
}

#[test]
fn region_affine_reclustering_steers_clients() {
    let (fabric, shared) = make_shared(4, 16, Assignment::RegionAffine { period_frames: 1 });
    let client_port = fabric.alloc_port();
    let sh = shared.clone();
    let desired: Vec<u32> = in_task(&fabric, move |ctx| {
        let mut stats = ThreadStats::new();
        let mut mask = 0u64;
        // Connect 8 clients through their home threads (2 per thread).
        for cid in 0..8u32 {
            sh.handle_message(
                ctx,
                cid / 2,
                client_port,
                ClientMessage::Connect {
                    client_id: cid,
                    arena: 0,
                },
                &mut stats,
                &mut mask,
            );
        }
        // Spawn them, then recluster on the next world update.
        sh.run_world_update(ctx, sh.ports[0], &mut stats, 1);
        sh.run_world_update(ctx, sh.ports[0], &mut stats, 2);
        (0..16).map(|i| sh.clients.slot(i).desired_thread).collect()
    });
    // Every active slot got a desired thread in range, and the spread
    // uses more than one thread (8 players cluster into ≥2 groups).
    let active: Vec<u32> = desired.iter().take(8).copied().collect();
    assert!(active.iter().all(|&t| t < 4));
    let distinct: std::collections::HashSet<u32> = active.iter().copied().collect();
    assert!(distinct.len() >= 2, "no spread: {active:?}");
}

#[test]
fn connect_from_new_port_does_not_hijack_live_slot() {
    // A Connect with a known client_id but a different source port must
    // not rebind the reply port of a live session (address hijack).
    let (fabric, shared) = make_shared(2, 8, Assignment::Static);
    let port_a = fabric.alloc_port();
    let port_b = fabric.alloc_port();
    let sh = shared.clone();
    let (bound_port, rejected) = in_task(&fabric, move |ctx| {
        let mut stats = ThreadStats::new();
        let mut mask = 0u64;
        sh.handle_message(
            ctx,
            0,
            port_a,
            ClientMessage::Connect {
                client_id: 7,
                arena: 0,
            },
            &mut stats,
            &mut mask,
        );
        sh.run_world_update(ctx, sh.ports[0], &mut stats, 1);
        // Attacker (or stale duplicate) claims the session from port_b.
        sh.handle_message(
            ctx,
            0,
            port_b,
            ClientMessage::Connect {
                client_id: 7,
                arena: 0,
            },
            &mut stats,
            &mut mask,
        );
        (sh.clients.slot(0).reply_port, stats.connect_rejected)
    });
    assert_eq!(bound_port, port_a);
    assert_eq!(rejected, 1);
}

#[test]
fn connect_rebinds_after_silence_grace() {
    // With a timeout configured, a rebind from a new port is accepted
    // once the old endpoint has been silent for half the window.
    const TIMEOUT: u64 = 2_000_000_000;
    let (fabric, shared) = make_shared_with_timeout(2, 8, Assignment::Static, TIMEOUT);
    let port_a = fabric.alloc_port();
    let port_b = fabric.alloc_port();
    let sh = shared.clone();
    let (early, late) = in_task(&fabric, move |ctx| {
        let mut stats = ThreadStats::new();
        let mut mask = 0u64;
        sh.handle_message(
            ctx,
            0,
            port_a,
            ClientMessage::Connect {
                client_id: 7,
                arena: 0,
            },
            &mut stats,
            &mut mask,
        );
        sh.run_world_update(ctx, sh.ports[0], &mut stats, 1);
        // Too soon: rejected.
        sh.handle_message(
            ctx,
            0,
            port_b,
            ClientMessage::Connect {
                client_id: 7,
                arena: 0,
            },
            &mut stats,
            &mut mask,
        );
        let early = sh.clients.slot(0).reply_port;
        // After the grace period: accepted.
        ctx.sleep_until(ctx.now() + TIMEOUT / 2);
        sh.handle_message(
            ctx,
            0,
            port_b,
            ClientMessage::Connect {
                client_id: 7,
                arena: 0,
            },
            &mut stats,
            &mut mask,
        );
        (early, sh.clients.slot(0).reply_port)
    });
    assert_eq!(early, port_a);
    assert_eq!(late, port_b);
}

#[test]
fn silent_client_is_reclaimed_with_bye() {
    const TIMEOUT: u64 = 1_000_000_000;
    let (fabric, shared) = make_shared_with_timeout(2, 8, Assignment::Static, TIMEOUT);
    let client_port = fabric.alloc_port();
    let sh = shared.clone();
    let (state, timeouts, got_bye) = in_task(&fabric, move |ctx| {
        let mut stats = ThreadStats::new();
        let mut mask = 0u64;
        sh.handle_message(
            ctx,
            0,
            client_port,
            ClientMessage::Connect {
                client_id: 7,
                arena: 0,
            },
            &mut stats,
            &mut mask,
        );
        sh.run_world_update(ctx, sh.ports[0], &mut stats, 1);
        assert_eq!(sh.clients.slot(0).state, SlotState::Active);
        // Stay silent past the timeout; the next world update reclaims.
        ctx.sleep_until(ctx.now() + TIMEOUT + 1);
        sh.run_world_update(ctx, sh.ports[0], &mut stats, 2);
        ctx.sleep_until(ctx.now() + 2_000_000);
        let mut got_bye = false;
        while let Some(m) = ctx.try_recv(client_port) {
            if let Ok(ServerMessage::Bye { client_id: 7 }) = ServerMessage::from_bytes(&m.payload) {
                got_bye = true;
            }
        }
        (sh.clients.slot(0).state, stats.timeouts, got_bye)
    });
    assert_eq!(state, SlotState::Empty);
    assert_eq!(timeouts, 1);
    assert!(got_bye, "no Bye datagram reached the client");
}

#[test]
fn active_client_is_not_reclaimed_while_sending() {
    const TIMEOUT: u64 = 1_000_000_000;
    let (fabric, shared) = make_shared_with_timeout(2, 8, Assignment::Static, TIMEOUT);
    let client_port = fabric.alloc_port();
    let sh = shared.clone();
    let state = in_task(&fabric, move |ctx| {
        let mut stats = ThreadStats::new();
        let mut mask = 0u64;
        sh.handle_message(
            ctx,
            0,
            client_port,
            ClientMessage::Connect {
                client_id: 7,
                arena: 0,
            },
            &mut stats,
            &mut mask,
        );
        sh.run_world_update(ctx, sh.ports[0], &mut stats, 1);
        // Keep moving at a rate well inside the timeout window.
        for frame in 0..10u32 {
            ctx.sleep_until(ctx.now() + TIMEOUT / 2);
            sh.handle_message(
                ctx,
                0,
                client_port,
                ClientMessage::Move {
                    client_id: 7,
                    cmd: MoveCmd::idle(frame, 30),
                },
                &mut stats,
                &mut mask,
            );
            sh.run_world_update(ctx, sh.ports[0], &mut stats, 2 + frame);
        }
        assert_eq!(stats.timeouts, 0);
        sh.clients.slot(0).state
    });
    assert_eq!(state, SlotState::Active);
}

#[test]
fn global_event_buffer_roundtrip() {
    use parquake_math::Vec3;
    use parquake_protocol::{GameEvent, GameEventKind};
    let (fabric, shared) = make_shared(2, 8, Assignment::Static);
    let sh = shared.clone();
    let (n_read, n_after_clear) = in_task(&fabric, move |ctx| {
        let mut stats = ThreadStats::new();
        let ev = GameEvent {
            kind: GameEventKind::Sound,
            a: 1,
            b: 2,
            pos: Vec3::ZERO,
        };
        sh.push_global_events(ctx, &mut stats, &[ev, ev, ev]);
        let read = sh.read_global_events(ctx, &mut stats).len();
        sh.clear_global_events(ctx, &mut stats);
        (read, sh.read_global_events(ctx, &mut stats).len())
    });
    assert_eq!(n_read, 3);
    assert_eq!(n_after_clear, 0);
}

/// Satellite: one server, one gateway port, two concurrent clients —
/// one legacy (no input-seq trailer), one predicting. The legacy
/// client's replies must stay trailer-free while the predicting
/// client's replies carry the reconciliation trailer, with duplicate
/// inputs dropped and sequence gaps bumping the perturbation epoch.
#[test]
fn mixed_legacy_and_trailered_clients_share_a_server() {
    let (fabric, shared) = make_shared(2, 8, Assignment::Static);
    let legacy_port = fabric.alloc_port();
    let predict_port = fabric.alloc_port();
    let sh = shared.clone();
    let (stats_out, legacy_reply, predict_reply) = in_task(&fabric, move |ctx| {
        let mut stats = ThreadStats::new();
        let mut mask = 0u64;
        for (cid, port) in [(7u32, legacy_port), (8u32, predict_port)] {
            sh.handle_message(
                ctx,
                0,
                port,
                ClientMessage::Connect {
                    client_id: cid,
                    arena: 0,
                },
                &mut stats,
                &mut mask,
            );
        }
        sh.run_world_update(ctx, sh.ports[0], &mut stats, 1);

        let send_move = |ctx: &parquake_fabric::TaskCtx,
                         stats: &mut ThreadStats,
                         mask: &mut u64,
                         cid: u32,
                         seq: u32,
                         trailer: bool| {
            let cmd = MoveCmd {
                forward: 320.0,
                predict_ack: trailer.then_some(0),
                ..MoveCmd::idle(seq, 30)
            };
            sh.handle_message(
                ctx,
                0,
                if cid == 7 { legacy_port } else { predict_port },
                ClientMessage::Move {
                    client_id: cid,
                    cmd,
                },
                stats,
                mask,
            )
        };

        // In-order inputs for both clients.
        for seq in 1..=2u32 {
            assert!(send_move(ctx, &mut stats, &mut mask, 7, seq, false));
            assert!(send_move(ctx, &mut stats, &mut mask, 8, seq, true));
        }
        // A network duplicate of the predicting client's seq 2: dropped.
        assert!(
            !send_move(ctx, &mut stats, &mut mask, 8, 2, true),
            "duplicate trailered input must not re-execute"
        );
        // The same duplicate from the legacy client IS re-executed
        // (legacy semantics are untouched).
        assert!(send_move(ctx, &mut stats, &mut mask, 7, 2, false));
        // A gap: seqs 3..4 lost, 5 arrives.
        assert!(send_move(ctx, &mut stats, &mut mask, 8, 5, true));

        let my_port = sh.ports[0];
        sh.reply_for_slots(
            ctx,
            my_port,
            &[0, 1],
            &[],
            2,
            &mut stats,
            true,
            None,
            &mut InterestStats::default(),
        );
        ctx.sleep_until(ctx.now() + 2_000_000);
        let grab = |port| {
            let mut reply = None;
            while let Some(m) = ctx.try_recv(port) {
                if let Ok(ServerMessage::Reply { seq, predict, .. }) =
                    ServerMessage::from_bytes(&m.payload)
                {
                    reply = Some((seq, predict));
                }
            }
            reply
        };
        (stats, grab(legacy_port), grab(predict_port))
    });

    assert_eq!(stats_out.inputs_deduped, 1);
    assert_eq!(stats_out.input_gaps, 1);

    let (seq, predict) = legacy_reply.expect("legacy client got no reply");
    assert_eq!(seq, 2);
    assert_eq!(predict, None, "legacy reply must stay trailer-free");

    let (seq, predict) = predict_reply.expect("predicting client got no reply");
    assert_eq!(seq, 5);
    let p = predict.expect("predicting reply lacks the trailer");
    assert_eq!(p.input_ack, 5, "ack echoes the last applied input");
    assert!(
        p.perturb >= 1,
        "the 3..4 gap must bump the perturbation epoch"
    );
}
