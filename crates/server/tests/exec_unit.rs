//! Focused tests of the move executor's locking behaviour.

use std::sync::{Arc, Mutex};

use parquake_areanode::LeafSet;
use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{Fabric, FabricKind, TaskCtx};
use parquake_math::{Pcg32, Vec3};
use parquake_metrics::ThreadStats;
use parquake_protocol::{Buttons, MoveCmd};
use parquake_server::exec::{execute_move, ExecEnv, RegionLocks, LOCK_COVERAGE_MARGIN};
use parquake_server::{CostModel, LockPolicy};
use parquake_sim::movement::move_bounding_box;
use parquake_sim::GameWorld;

fn world(players: u16) -> Arc<GameWorld> {
    let map = Arc::new(MapGenConfig::small_arena(33).generate());
    let w = Arc::new(GameWorld::new(map, 4, players));
    w.links.set_checking(false);
    w.store.set_checking(false);
    let mut rng = Pcg32::seeded(8);
    for i in 0..players {
        w.spawn_player(i, i as u32, &mut rng);
    }
    w
}

/// Execute one command under `policy` and return the merged stats.
fn one_move(policy: LockPolicy, cmd: MoveCmd) -> ThreadStats {
    let w = world(8);
    let fabric: Arc<dyn Fabric> = FabricKind::VirtualSmp(Default::default()).build();
    let locks = RegionLocks::new(&fabric, &w.tree, 8);
    let out = Arc::new(Mutex::new(ThreadStats::new()));
    let o = out.clone();
    fabric.spawn(
        "driver",
        Some(0),
        Box::new(move |ctx: &TaskCtx| {
            let cost = CostModel::default();
            let env = ExecEnv {
                world: &w,
                locks: &locks,
                cost: &cost,
                policy: Some(policy),
                commit_log: None,
            };
            let mut stats = ThreadStats::new();
            let mut mask = 0u64;
            execute_move(&env, ctx, 0, 0, &cmd, &mut stats, &mut mask);
            *o.lock().unwrap() = stats;
        }),
    );
    fabric.run();
    let guard = out.lock().unwrap();
    guard.clone()
}

#[test]
fn baseline_long_range_locks_the_entire_map() {
    let cmd = MoveCmd {
        buttons: Buttons(Buttons::ATTACK),
        forward: 100.0,
        ..MoveCmd::idle(1, 30)
    };
    let stats = one_move(LockPolicy::Baseline, cmd);
    // Phase A locks a few leaves; phase B locks all 16 of the default
    // tree: the distinct set is the full map.
    assert_eq!(stats.lock.distinct_leaves, 16, "{:?}", stats.lock);
    assert!(stats.lock.leaf_lock_events > 16, "no relocking happened");
}

#[test]
fn optimized_directional_locks_a_strict_subset() {
    // Axis-aligned beam: the paper notes directional locking is only
    // effective when the beam's bounding box is narrow — a diagonal
    // shot across the map degenerates to (nearly) the whole world, so
    // this test fires due east.
    let cmd = MoveCmd {
        buttons: Buttons(Buttons::ATTACK),
        forward: 100.0,
        yaw: 0.0,
        ..MoveCmd::idle(1, 30)
    };
    let stats = one_move(LockPolicy::Optimized, cmd);
    assert!(
        stats.lock.distinct_leaves < 16,
        "directional lock covered the whole map: {:?}",
        stats.lock
    );
    assert!(stats.lock.distinct_leaves >= 1);
}

#[test]
fn diagonal_beams_degrade_toward_whole_map_locking() {
    // The paper's caveat, verified: a cross-map diagonal shot locks
    // (almost) everything even under the optimized policy.
    let cmd = MoveCmd {
        buttons: Buttons(Buttons::ATTACK),
        forward: 100.0,
        yaw: 45.0,
        ..MoveCmd::idle(1, 30)
    };
    let stats = one_move(LockPolicy::Optimized, cmd);
    assert!(
        stats.lock.distinct_leaves >= 12,
        "expected near-total coverage, got {}",
        stats.lock.distinct_leaves
    );
}

#[test]
fn short_range_moves_lock_few_leaves_under_any_policy() {
    for policy in [
        LockPolicy::Baseline,
        LockPolicy::Optimized,
        LockPolicy::OnePass,
    ] {
        let cmd = MoveCmd {
            forward: 200.0,
            ..MoveCmd::idle(1, 30)
        };
        let stats = one_move(policy, cmd);
        assert!(
            stats.lock.distinct_leaves <= 4,
            "{policy:?} locked {} leaves for a plain walk",
            stats.lock.distinct_leaves
        );
        assert_eq!(stats.requests, 1);
    }
}

#[test]
fn one_pass_attack_locks_once_but_covers_the_beam() {
    let cmd = MoveCmd {
        buttons: Buttons(Buttons::ATTACK),
        forward: 100.0,
        ..MoveCmd::idle(1, 30)
    };
    let stats = one_move(LockPolicy::OnePass, cmd);
    assert_eq!(stats.lock.leaf_lock_events, stats.lock.distinct_leaves);
    // The beam region is larger than a plain walk's.
    assert!(stats.lock.distinct_leaves >= 2);
}

/// The coverage-margin safety property behind the claim checker: every
/// entity whose box intersects a move's query region must be *fully*
/// covered by the leaves of the (margin-inflated) lock plan, so two
/// threads that can both reach an object always share a leaf lock.
#[test]
fn lock_coverage_margin_fully_covers_every_reachable_entity() {
    let w = world(16);
    let mut plan = LeafSet::new();
    let mut entity_leaves = LeafSet::new();
    let mut rng = Pcg32::seeded(99);
    for _ in 0..500 {
        // Random mover state.
        let idx = rng.below(16) as u16;
        let e = w.store.snapshot(idx);
        let bbox = move_bounding_box(&e.abs_box(), e.vel, 30);
        let covered = bbox.inflated(Vec3::splat(LOCK_COVERAGE_MARGIN));
        w.tree.leaves_overlapping(&covered, &mut plan);
        // Every entity touching the query region…
        for id in 0..w.store.capacity() as u16 {
            let other = w.store.snapshot(id);
            if !other.active || !other.abs_box().intersects(&bbox) {
                continue;
            }
            // …must have all of its own leaves inside the plan.
            w.tree
                .leaves_overlapping(&other.abs_box(), &mut entity_leaves);
            for &leaf in entity_leaves.ids() {
                assert!(
                    plan.contains(leaf),
                    "entity {id} leaf {leaf} outside lock plan (margin too small)"
                );
            }
        }
        // Shuffle the mover around for the next iteration.
        let b = w.map.bounds;
        let p = parquake_math::vec3::vec3(
            rng.range_f32(b.min.x + 64.0, b.max.x - 64.0),
            rng.range_f32(b.min.y + 64.0, b.max.y - 64.0),
            40.0,
        );
        if w.map.player_fits(p) {
            w.store.with_mut(idx, 0, |x| x.pos = p);
            w.relink_unlocked(idx);
        }
    }
}
