//! Semantic equivalence: running the *same* command stream through the
//! locked executor (either policy) must produce *exactly* the same
//! world state as the lock-free sequential path — the locking machinery
//! may cost time but must never change game semantics.

use std::sync::{Arc, Mutex};

use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{FabricKind, TaskCtx};
use parquake_math::Pcg32;
use parquake_metrics::ThreadStats;
use parquake_protocol::{Buttons, MoveCmd};
use parquake_server::exec::{execute_move, ExecEnv, RegionLocks};
use parquake_server::{CostModel, LockPolicy};
use parquake_sim::GameWorld;

/// Deterministic command stream for `players` over `rounds` frames.
fn command(rng: &mut Pcg32, round: u32, seq: u32) -> MoveCmd {
    let mut buttons = Buttons::NONE;
    if rng.chance(0.10) {
        buttons = buttons.with(Buttons::ATTACK);
    } else if rng.chance(0.05) {
        buttons = buttons.with(Buttons::THROW);
    }
    if rng.chance(0.05) {
        buttons = buttons.with(Buttons::JUMP);
    }
    MoveCmd {
        seq,
        sent_at: round as u64,
        pitch: rng.range_f32(-20.0, 20.0),
        yaw: rng.range_f32(-180.0, 180.0),
        forward: 320.0,
        side: 0.0,
        up: 0.0,
        buttons,
        msec: 30,
        predict_ack: None,
    }
}

/// Drive `rounds` frames of moves through `execute_move` on a single
/// fabric task under the given policy; return the final world hash.
fn drive(policy: Option<LockPolicy>, players: u16, rounds: u32) -> (u64, GameAudit) {
    let map = Arc::new(MapGenConfig::small_arena(21).generate());
    let world = Arc::new(GameWorld::new(map, 4, players));
    // Checking stays off: one task, but the sequential reference path
    // has no lock notes at all, so the comparison needs parity.
    world.links.set_checking(false);
    world.store.set_checking(false);
    let mut srng = Pcg32::seeded(9);
    for i in 0..players {
        world.spawn_player(i, i as u32, &mut srng);
    }

    let fabric = FabricKind::VirtualSmp(Default::default()).build();
    let locks = {
        // RegionLocks must be allocated before run().
        RegionLocks::new(&fabric, &world.tree, players as usize)
    };
    let result = Arc::new(Mutex::new((0u64, GameAudit::default())));
    let res = result.clone();
    let w = world.clone();
    fabric.spawn(
        "driver",
        Some(0),
        Box::new(move |ctx: &TaskCtx| {
            let cost = CostModel::default();
            let env = ExecEnv {
                world: &w,
                locks: &locks,
                cost: &cost,
                policy,
                commit_log: None,
            };
            let mut stats = ThreadStats::new();
            let mut mask = 0u64;
            let mut rng = Pcg32::seeded(0xE0);
            for round in 0..rounds {
                for p in 0..players {
                    let cmd = command(&mut rng, round, round);
                    execute_move(&env, ctx, 0, p, &cmd, &mut stats, &mut mask);
                }
            }
            let audit = GameAudit {
                requests: stats.requests,
                link_audit_ok: w.audit_links().is_ok(),
            };
            *res.lock().unwrap() = (w.world_hash(), audit);
        }),
    );
    fabric.run();
    let r = result.lock().unwrap();
    (r.0, r.1.clone())
}

#[derive(Clone, Default)]
struct GameAudit {
    requests: u64,
    link_audit_ok: bool,
}

#[test]
fn locked_execution_matches_lockfree_execution_exactly() {
    let (h_none, a_none) = drive(None, 12, 40);
    let (h_base, a_base) = drive(Some(LockPolicy::Baseline), 12, 40);
    let (h_opt, a_opt) = drive(Some(LockPolicy::Optimized), 12, 40);
    let (h_1p, a_1p) = drive(Some(LockPolicy::OnePass), 12, 40);
    assert_eq!(a_none.requests, 12 * 40);
    assert_eq!(h_none, h_base, "baseline locking changed game semantics");
    assert_eq!(h_none, h_opt, "optimized locking changed game semantics");
    assert_eq!(h_none, h_1p, "one-pass locking changed game semantics");
    assert!(
        a_none.link_audit_ok && a_base.link_audit_ok && a_opt.link_audit_ok && a_1p.link_audit_ok
    );
}

#[test]
fn spatial_index_stays_consistent_under_churn() {
    // Many rounds with lots of long-range actions (projectile launch /
    // relink churn), then audit the link table exhaustively.
    let (_h, audit) = drive(Some(LockPolicy::Optimized), 16, 120);
    assert!(audit.link_audit_ok, "link audit failed after churn");
    assert_eq!(audit.requests, 16 * 120);
}
