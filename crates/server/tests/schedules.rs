//! Schedule exploration (model-checking-lite) for the region-locking
//! protocol.
//!
//! The virtual fabric's `schedule_seed` deterministically perturbs its
//! two scheduling choices (equal-time dispatch ties and lock handoff
//! order), so each seed runs the same program under a different — but
//! reproducible — legal interleaving. This suite sweeps seeds over a
//! small world with several worker tasks and checks, for every explored
//! schedule:
//!
//! * the runtime lock-order witness reports **zero violations**;
//! * for short-range command streams (one lock phase per move, held
//!   across the whole move), the parallel outcome equals a **sequential
//!   replay** of the moves in the order they passed their serialization
//!   points — the locking protocol linearizes;
//! * for long-range streams (two lock phases per move — the phase-A
//!   order is not a linearization), the spatial index stays consistent
//!   and the same seed replays to the identical world state.

use std::collections::HashSet;
use std::sync::Arc;

use parquake_bsp::mapgen::MapGenConfig;
use parquake_fabric::{FabricKind, LockWitness, TaskCtx, VirtualSmpConfig};
use parquake_math::Pcg32;
use parquake_metrics::{ThreadStats, WitnessReport};
use parquake_protocol::{Buttons, MoveCmd};
use parquake_server::exec::{execute_move, CommitEntry, CommitLog, ExecEnv, RegionLocks};
use parquake_server::{CostModel, LockPolicy};
use parquake_sim::GameWorld;

const PLAYERS: u16 = 12;
const ROUNDS: u32 = 10;
const WORKERS: u32 = 4;

/// Deterministic per-player command streams. `long_range` mixes in
/// ATTACK/THROW (two lock phases); otherwise moves are motion-only.
fn gen_cmds(long_range: bool) -> Arc<Vec<Vec<MoveCmd>>> {
    let mut rng = Pcg32::seeded(0x5C_4ED);
    let cmds = (0..PLAYERS)
        .map(|_| {
            (0..ROUNDS)
                .map(|r| {
                    let mut buttons = Buttons::NONE;
                    if long_range {
                        if rng.chance(0.30) {
                            buttons = buttons.with(Buttons::ATTACK);
                        } else if rng.chance(0.20) {
                            buttons = buttons.with(Buttons::THROW);
                        }
                    }
                    if rng.chance(0.10) {
                        buttons = buttons.with(Buttons::JUMP);
                    }
                    MoveCmd {
                        seq: r,
                        sent_at: r as u64,
                        pitch: rng.range_f32(-20.0, 20.0),
                        yaw: rng.range_f32(-180.0, 180.0),
                        forward: 320.0,
                        side: 0.0,
                        up: 0.0,
                        buttons,
                        msec: 30,
                        predict_ack: None,
                    }
                })
                .collect()
        })
        .collect();
    Arc::new(cmds)
}

/// Identical world for every run of a sweep (same map, same spawns).
fn build_world() -> Arc<GameWorld> {
    let map = Arc::new(MapGenConfig::small_arena(21).generate());
    let world = Arc::new(GameWorld::new(map, 4, PLAYERS));
    let mut srng = Pcg32::seeded(9);
    for i in 0..PLAYERS {
        world.spawn_player(i, i as u32, &mut srng);
    }
    world
}

struct RunResult {
    world_hash: u64,
    order: Vec<CommitEntry>,
    witness: WitnessReport,
    links_ok: bool,
}

/// Run the command streams through `WORKERS` contending tasks under
/// `policy` on a fabric seeded with `seed`, with the lock witness and
/// the dynamic protocol checkers attached.
fn parallel_run(policy: LockPolicy, seed: u64, cmds: &Arc<Vec<Vec<MoveCmd>>>) -> RunResult {
    let world = build_world();
    world.links.set_checking(true);
    world.store.set_checking(true);

    let fabric = FabricKind::VirtualSmp(VirtualSmpConfig {
        schedule_seed: seed,
        ..VirtualSmpConfig::default()
    })
    .build();
    let witness = Arc::new(LockWitness::new());
    fabric.attach_witness(witness.clone());
    // Allocated after attach so the locks are classified.
    let locks = Arc::new(RegionLocks::new(&fabric, &world.tree, PLAYERS as usize));
    let log = Arc::new(CommitLog::new());

    for t in 0..WORKERS {
        let w = world.clone();
        let locks = locks.clone();
        let log = log.clone();
        let cmds = cmds.clone();
        fabric.spawn(
            &format!("worker-{t}"),
            Some(t),
            Box::new(move |ctx: &TaskCtx| {
                let cost = CostModel::default();
                let env = ExecEnv {
                    world: &w,
                    locks: &locks,
                    cost: &cost,
                    policy: Some(policy),
                    commit_log: Some(&log),
                };
                // Seed-derived per-move think time: shifts each worker's
                // virtual-time position so every seed interleaves the
                // move stream differently (on top of the scheduler's own
                // tie/handoff perturbation). Charged time never changes
                // game semantics, so replay parity must survive it.
                let mut jitter = Pcg32::new(seed, 0xA5A5 + t as u64);
                let mut stats = ThreadStats::new();
                let mut mask = 0u64;
                for round in 0..ROUNDS {
                    for p in (t as u16..PLAYERS).step_by(WORKERS as usize) {
                        ctx.charge(jitter.below(60_000) as u64);
                        let cmd = cmds[p as usize][round as usize];
                        execute_move(&env, ctx, t, p, &cmd, &mut stats, &mut mask);
                    }
                }
            }),
        );
    }
    fabric.run();
    RunResult {
        world_hash: world.world_hash(),
        order: log.take(),
        witness: witness.report(),
        links_ok: world.audit_links().is_ok(),
    }
}

/// Replay the moves sequentially (lock-free reference executor) in the
/// order the parallel run committed them; return the final world hash.
fn replay(order: &[CommitEntry], cmds: &Arc<Vec<Vec<MoveCmd>>>) -> u64 {
    let world = build_world();
    world.links.set_checking(false);
    world.store.set_checking(false);
    let fabric = FabricKind::VirtualSmp(Default::default()).build();
    let locks = RegionLocks::new(&fabric, &world.tree, PLAYERS as usize);
    let w = world.clone();
    let order = order.to_vec();
    let cmds = cmds.clone();
    fabric.spawn(
        "replayer",
        Some(0),
        Box::new(move |ctx: &TaskCtx| {
            let cost = CostModel::default();
            let env = ExecEnv {
                world: &w,
                locks: &locks,
                cost: &cost,
                policy: None,
                commit_log: None,
            };
            let mut stats = ThreadStats::new();
            let mut mask = 0u64;
            for e in &order {
                let cmd = cmds[e.slot as usize][e.seq as usize];
                execute_move(&env, ctx, 0, e.slot, &cmd, &mut stats, &mut mask);
            }
        }),
    );
    fabric.run();
    world.world_hash()
}

/// FNV-1a fingerprint of an interleaving (the committed order).
fn fingerprint(order: &[CommitEntry]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for e in order {
        for v in [e.task as u64, e.slot as u64, e.seq as u64] {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
    }
    h
}

/// The tentpole assertion: ≥ 100 distinct explored interleavings, zero
/// witness violations in every one, and — for single-phase moves —
/// exact world-state parity between each parallel schedule and its own
/// sequential linearization, under both lock policies.
#[test]
fn explored_schedules_linearize_with_zero_violations() {
    let cmds = gen_cmds(false);
    let mut fingerprints = HashSet::new();
    for (pi, policy) in [LockPolicy::Baseline, LockPolicy::Optimized]
        .into_iter()
        .enumerate()
    {
        // Disjoint seed ranges: short-range streams behave identically
        // under both policies (they differ only in long-range region
        // shapes), so shared seeds would yield shared interleavings.
        for seed in (pi as u64 * 64)..(pi as u64 * 64 + 64) {
            let run = parallel_run(policy, seed, &cmds);
            assert!(
                run.witness.acquisitions > 0,
                "{policy:?}/{seed}: no locks witnessed"
            );
            run.witness.assert_clean(&format!("{policy:?} seed {seed}"));
            assert!(run.links_ok, "{policy:?}/{seed}: link audit failed");
            assert_eq!(
                run.order.len(),
                (PLAYERS as u32 * ROUNDS) as usize,
                "{policy:?}/{seed}: lost moves"
            );
            let seq_hash = replay(&run.order, &cmds);
            assert_eq!(
                run.world_hash, seq_hash,
                "{policy:?} seed {seed}: parallel world state diverged from its \
                 sequential linearization"
            );
            fingerprints.insert(fingerprint(&run.order));
        }
    }
    assert!(
        fingerprints.len() >= 100,
        "only {} distinct interleavings explored (need ≥ 100)",
        fingerprints.len()
    );
}

/// Long-range actions take two lock phases per move, so the phase-A
/// commit order is not a linearization; assert the protocol invariants
/// (clean witness, consistent spatial index) and that each seed's
/// schedule is itself reproducible.
#[test]
fn long_range_schedules_hold_invariants_and_replay() {
    let cmds = gen_cmds(true);
    for policy in [LockPolicy::Baseline, LockPolicy::Optimized] {
        for seed in [0u64, 7, 23] {
            let a = parallel_run(policy, seed, &cmds);
            a.witness
                .assert_clean(&format!("long-range {policy:?} seed {seed}"));
            assert!(a.links_ok, "{policy:?}/{seed}: link audit failed");
            let b = parallel_run(policy, seed, &cmds);
            assert_eq!(
                a.world_hash, b.world_hash,
                "{policy:?}/{seed}: not deterministic"
            );
            assert_eq!(
                a.order, b.order,
                "{policy:?}/{seed}: schedule not reproducible"
            );
        }
    }
}
