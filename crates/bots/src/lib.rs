//! Synthetic automatic players ("bots").
//!
//! The paper replaces humans with automatic players to make the
//! benchmark repeatable (§4, citing the authors' ISPASS'01
//! methodology). This crate reproduces that workload generator:
//!
//! * every bot sends exactly one *move* command per client frame
//!   (~30 ms) — the always-active worst case the paper measures,
//! * bots are multiplexed onto *driver* tasks, like the multi-player
//!   client machines of the original testbed; drivers live off the
//!   modelled server CPUs,
//! * behaviour is deterministic per seed: wander with drift, react to
//!   walls, jump, and aim long-range attacks at players seen in the
//!   most recent server reply,
//! * every reply is matched against its echoed send timestamp to
//!   produce the response-rate and response-time metrics of §4.

pub mod behavior;
pub mod driver;
pub mod predict;

pub use behavior::{BotBehavior, BotMind};
pub use driver::{
    spawn_swarm, spawn_swarm_multi, BotSwarm, BotSwarmConfig, PredictMap, SwarmRamp, SwarmTopology,
};
pub use predict::{Predictor, PREDICT_RING_CAP};
