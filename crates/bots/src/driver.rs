//! Bot driver tasks: the client machines of the testbed.
//!
//! Each driver owns one fabric port and multiplexes many bots over it,
//! exactly like the original setup drove several automatic players per
//! dual-processor client box. Drivers pace every bot at one move per
//! client frame regardless of replies (the paper's worst-case,
//! always-active workload) and collect response statistics.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use parquake_fabric::{Fabric, Nanos, PortId, TaskCtx};
use parquake_metrics::ResponseStats;
use parquake_protocol::{ClientMessage, Decode, Encode, ServerMessage};

use crate::behavior::{BotBehavior, BotMind};
use crate::predict::Predictor;

/// The shared compiled map handed to predicting clients. Debug-opaque:
/// a compiled BSP world is not meaningfully printable.
#[derive(Clone)]
pub struct PredictMap(pub Arc<parquake_bsp::BspWorld>);

impl std::fmt::Debug for PredictMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PredictMap(..)")
    }
}

/// Swarm configuration.
#[derive(Clone, Debug)]
pub struct BotSwarmConfig {
    /// Total bots (player count of the experiment).
    pub players: u32,
    /// Driver tasks to spread them over (client machines).
    pub drivers: u32,
    /// Client frame length — one move per bot per frame (~30 ms).
    pub client_frame_ms: u32,
    /// Workload seed.
    pub seed: u64,
    /// Bots stop sending at this time (give the server room to drain).
    pub send_until: Nanos,
    /// Behaviour mix.
    pub behavior: BotBehavior,
    /// Modelled client CPU cost per sent command.
    pub think_cost_ns: Nanos,
    /// Random cadence jitter (±ns) applied per command — clients are
    /// asynchronous, which is what creates the paper's fine-grain
    /// per-frame imbalance (§4.2).
    pub jitter_ns: Nanos,
    /// Population ramp: when each bot joins and leaves the run.
    /// `None` = everyone plays from 0 to `send_until` (the paper's
    /// constant worst-case load).
    pub ramp: Option<SwarmRamp>,
    /// Client-side prediction: `Some(map)` makes every bot run the
    /// shared movement kernel on the given compiled map, send the
    /// input-seq trailer, and reconcile against trailered replies.
    /// `None` = legacy clients (no trailer on the wire).
    pub predict: Option<PredictMap>,
}

/// A time-varying population profile for the swarm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwarmRamp {
    /// Bots join staggered over `[0, ramp_up_ns]`, everyone plays
    /// through a hold window, then bots leave staggered over the
    /// down-ramp — the load shape that drives an elastic directory
    /// through spawn-under-pressure and reap-after-drain.
    UpDown {
        ramp_up_ns: Nanos,
        hold_ns: Nanos,
        ramp_down_ns: Nanos,
    },
}

impl SwarmRamp {
    /// When global client `c` of `players` joins and leaves.
    pub fn window(&self, c: u32, players: u32) -> (Nanos, Nanos) {
        let players = players.max(1) as Nanos;
        match *self {
            SwarmRamp::UpDown {
                ramp_up_ns,
                hold_ns,
                ramp_down_ns,
            } => {
                let join = ramp_up_ns * c as Nanos / players;
                let leave = ramp_up_ns + hold_ns + ramp_down_ns * (c as Nanos + 1) / players;
                (join, leave)
            }
        }
    }
}

impl BotSwarmConfig {
    pub fn new(players: u32, send_until: Nanos) -> BotSwarmConfig {
        BotSwarmConfig {
            players,
            drivers: 8.min(players.max(1)),
            client_frame_ms: 30,
            seed: 0xB07_5EED,
            send_until,
            behavior: BotBehavior::deathmatch(),
            think_cost_ns: 15_000,
            jitter_ns: 8_000_000,
            ramp: None,
            predict: None,
        }
    }
}

/// A spawned swarm; stats are filled when the fabric run completes.
pub struct BotSwarm {
    /// Aggregated response statistics across all bots.
    pub stats: Arc<Mutex<ResponseStats>>,
    /// Connection counter: bots that got a ConnectAck. Atomic — a
    /// plain tally needs no guard, so it stays off the waiver list.
    pub connected: Arc<AtomicU32>,
    /// Response statistics split by the arena each reply came from
    /// (index = arena id). Single-arena swarms have one entry.
    pub per_arena: Arc<Mutex<Vec<ResponseStats>>>,
    /// Unsolicited `ConnectAck`s heard while already connected — the
    /// signature of a supervised arena restored from checkpoint
    /// re-announcing its slots after recovery. Atomic, like
    /// `connected`.
    pub restarts_observed: Arc<AtomicU64>,
    /// Unsolicited `ConnectAck`s that moved a connected bot to a
    /// *different* arena — the destination world of a live migration
    /// re-acking the handed-off slot. Atomic, like `connected`.
    pub rehomed: Arc<AtomicU64>,
    /// Merged prediction/reconciliation statistics (all zeros when the
    /// swarm runs without [`BotSwarmConfig::predict`]).
    pub prediction: Arc<Mutex<parquake_metrics::PredictionStats>>,
    /// Ring entries still unacked across all bots at shutdown — the
    /// `in_flight` term that closes the prediction ledger.
    pub predict_in_flight: Arc<AtomicU64>,
}

/// Where a swarm's traffic goes.
///
/// Single-arena experiments list one arena whose entry is the server's
/// per-thread ports, with no front door: Connects go straight to the
/// bot's home thread, exactly the pre-arena behaviour. Multi-arena
/// experiments list one entry per arena plus the directory's admission
/// port; Connects then carry a requested arena id through the front
/// door and the `ConnectAck`'s echoed arena id tells the bot which
/// arena's ports to address from then on.
#[derive(Clone, Debug)]
pub struct SwarmTopology {
    /// Per-arena server ports (arena id → that arena's thread ports).
    pub arena_ports: Vec<Vec<PortId>>,
    /// Admission front door for Connects; `None` sends Connects to the
    /// bot's current arena/thread port directly.
    pub connect_port: Option<PortId>,
}

impl SwarmTopology {
    /// A single arena addressed directly (the classic setup).
    pub fn single(server_ports: &[PortId]) -> SwarmTopology {
        SwarmTopology {
            arena_ports: vec![server_ports.to_vec()],
            connect_port: None,
        }
    }
}

/// Spawn driver tasks for `cfg.players` bots. `server_ports` lists every
/// server thread's port; `initial_thread(client)` gives the connect-time
/// thread (block assignment from the server handle). Bots later follow
/// `assigned_thread` redirects in replies (the dynamic region-affine
/// assignment extension).
pub fn spawn_swarm(
    fabric: &Arc<dyn Fabric>,
    cfg: &BotSwarmConfig,
    server_ports: &[PortId],
    initial_thread: impl Fn(u32) -> usize,
) -> BotSwarm {
    spawn_swarm_multi(
        fabric,
        cfg,
        &SwarmTopology::single(server_ports),
        move |c| (0, initial_thread(c)),
    )
}

/// Spawn driver tasks routing across arenas. `initial(client)` returns
/// `(requested_arena, initial_thread)`: the arena id the bot asks for
/// in its Connect (0 lets a fill-first/least-loaded admission policy
/// choose) and its starting thread within whatever arena admits it.
pub fn spawn_swarm_multi(
    fabric: &Arc<dyn Fabric>,
    cfg: &BotSwarmConfig,
    topology: &SwarmTopology,
    initial: impl Fn(u32) -> (u16, usize),
) -> BotSwarm {
    assert!(
        !topology.arena_ports.is_empty() && topology.arena_ports.iter().all(|p| !p.is_empty()),
        "swarm topology needs at least one arena with at least one port"
    );
    let stats = Arc::new(Mutex::new(ResponseStats::new()));
    let connected = Arc::new(AtomicU32::new(0));
    let per_arena = Arc::new(Mutex::new(vec![
        ResponseStats::new();
        topology.arena_ports.len()
    ]));
    let restarts_observed = Arc::new(AtomicU64::new(0));
    let rehomed_observed = Arc::new(AtomicU64::new(0));
    let prediction = Arc::new(Mutex::new(parquake_metrics::PredictionStats::new()));
    let predict_in_flight = Arc::new(AtomicU64::new(0));
    let drivers = cfg.drivers.clamp(1, cfg.players.max(1));
    let per = cfg.players.div_ceil(drivers);
    for d in 0..drivers {
        let lo = d * per;
        let hi = ((d + 1) * per).min(cfg.players);
        if lo >= hi {
            break;
        }
        let port = fabric.alloc_port();
        // Bot drivers are the WAN side of the link: fabrics running a
        // WAN-scoped fault lottery perturb exactly the client↔server
        // datagrams and leave intra-server traffic pristine.
        fabric.mark_wan_port(port);
        let topology = topology.clone();
        let init: Vec<(u16, usize)> = (lo..hi)
            .map(|c| {
                let (arena, thread) = initial(c);
                let arena = (arena as usize).min(topology.arena_ports.len() - 1) as u16;
                (
                    arena,
                    thread.min(topology.arena_ports[arena as usize].len() - 1),
                )
            })
            .collect();
        let cfg = cfg.clone();
        let stats = stats.clone();
        let connected = connected.clone();
        let per_arena = per_arena.clone();
        let restarts = restarts_observed.clone();
        let rehomed = rehomed_observed.clone();
        let pred = prediction.clone();
        let pred_inflight = predict_in_flight.clone();
        fabric.spawn(
            &format!("bots-{d}"),
            None, // client machines: off the modelled server CPUs
            Box::new(move |ctx| {
                drive(
                    ctx,
                    port,
                    lo,
                    hi,
                    &topology,
                    init,
                    &cfg,
                    &stats,
                    &connected,
                    &per_arena,
                    &restarts,
                    &rehomed,
                    &pred,
                    &pred_inflight,
                );
            }),
        );
    }
    BotSwarm {
        stats,
        connected,
        per_arena,
        restarts_observed,
        rehomed: rehomed_observed,
        prediction,
        predict_in_flight,
    }
}

#[allow(clippy::too_many_arguments)]
fn drive(
    ctx: &TaskCtx,
    port: PortId,
    lo: u32,
    hi: u32,
    topology: &SwarmTopology,
    init: Vec<(u16, usize)>,
    cfg: &BotSwarmConfig,
    stats_out: &Mutex<ResponseStats>,
    connected_out: &AtomicU32,
    per_arena_out: &Mutex<Vec<ResponseStats>>,
    restarts_out: &AtomicU64,
    rehomed_out: &AtomicU64,
    prediction_out: &Mutex<parquake_metrics::PredictionStats>,
    predict_in_flight_out: &AtomicU64,
) {
    /// First Connect-retry interval; doubles per unanswered retry.
    const RETRY_MIN: Nanos = 100_000_000;
    /// Backoff ceiling for Connect retries.
    const RETRY_MAX: Nanos = 1_600_000_000;
    /// An acked bot that hears nothing for this long assumes its
    /// session died (server timeout, heavy loss) and reconnects.
    const STARVATION: Nanos = 1_000_000_000;

    let n = (hi - lo) as usize;
    let frame_ns = cfg.client_frame_ms as Nanos * 1_000_000;
    let mut bots: Vec<BotMind> = (lo..hi)
        .map(|c| BotMind::new(c, cfg.seed, cfg.behavior.clone()))
        .collect();
    // One prediction state machine per bot when the swarm predicts.
    let mut predictors: Vec<Option<Predictor>> = (0..n)
        .map(|_| {
            cfg.predict
                .as_ref()
                .map(|m| Predictor::new(m.0.clone(), parquake_math::Vec3::ZERO))
        })
        .collect();
    // The arena each bot asks for at Connect time (fixed) and the
    // arena/thread it currently addresses (updated from acks/replies).
    let requested: Vec<u16> = init.iter().map(|&(a, _)| a).collect();
    let mut cur_arena: Vec<usize> = init.iter().map(|&(a, _)| a as usize).collect();
    let mut cur_thread: Vec<usize> = init.iter().map(|&(_, t)| t).collect();
    let mut acked = vec![false; n];
    // Connection-count each bot only once, however often it reconnects.
    let mut ever_acked = vec![false; n];
    let mut backoff = vec![RETRY_MIN; n];
    let mut last_heard: Vec<Nanos> = vec![0; n];
    // Highest reply seq seen per bot: the fault fabric can duplicate
    // datagrams, and a stale copy must not count twice (-1 = none yet).
    let mut last_rx_seq = vec![-1i64; n];
    // Per-bot play window (the population ramp; no ramp = everyone
    // plays start to finish).
    let (join_at, leave_at): (Vec<Nanos>, Vec<Nanos>) = (lo..hi)
        .map(|c| match &cfg.ramp {
            None => (0, Nanos::MAX),
            Some(r) => r.window(c, cfg.players),
        })
        .unzip();
    let mut left = vec![false; n];
    // Stagger bots across the client frame so requests arrive
    // asynchronously (the paper's fine-grain imbalance source).
    let mut next_at: Vec<Nanos> = (0..n)
        .map(|i| join_at[i] + (i as Nanos * frame_ns) / n as Nanos)
        .collect();
    let mut stats = ResponseStats::new();
    let mut arena_stats = vec![ResponseStats::new(); topology.arena_ports.len()];
    let mut connected = 0u32;
    let mut restarts = 0u64;
    let mut rehomed = 0u64;

    loop {
        let now = ctx.now();
        if now >= cfg.send_until {
            break;
        }
        // Act on every bot whose schedule has come.
        for i in 0..n {
            if left[i] {
                continue;
            }
            if now >= leave_at[i] {
                // The bot's window closed: say goodbye and go quiet.
                left[i] = true;
                next_at[i] = cfg.send_until;
                if ever_acked[i] {
                    ctx.charge(cfg.think_cost_ns);
                    let msg = ClientMessage::Disconnect {
                        client_id: lo + i as u32,
                    };
                    // Alternate the leave path: even bots disconnect
                    // through the front door (the director's book
                    // removal), odd bots at their arena directly (the
                    // lifecycle-notice reconciliation path).
                    let at_arena = topology.arena_ports[cur_arena[i]][cur_thread[i]];
                    let to = match topology.connect_port {
                        Some(front) if (lo + i as u32) % 2 == 0 => front,
                        _ => at_arena,
                    };
                    ctx.send(port, to, msg.to_bytes());
                }
                continue;
            }
            if next_at[i] > now {
                continue;
            }
            // Starvation watchdog: a session that stops producing
            // replies (lost ack'd state, server-side timeout) falls
            // back to the Connect handshake instead of wedging.
            if acked[i] && now.saturating_sub(last_heard[i]) > STARVATION {
                acked[i] = false;
                backoff[i] = RETRY_MIN;
            }
            if !acked[i] {
                ctx.charge(cfg.think_cost_ns);
                let msg = ClientMessage::Connect {
                    client_id: lo + i as u32,
                    arena: requested[i],
                };
                // Connects go through the admission front door when the
                // topology has one; otherwise straight to the home port.
                let to = topology
                    .connect_port
                    .unwrap_or(topology.arena_ports[cur_arena[i]][cur_thread[i]]);
                ctx.send(port, to, msg.to_bytes());
                // Exponential backoff on the ack retry: lost acks are
                // re-requested quickly without flooding a dead link.
                next_at[i] = now + backoff[i];
                backoff[i] = (backoff[i] * 2).min(RETRY_MAX);
            } else {
                ctx.charge(cfg.think_cost_ns);
                let mut cmd = bots[i].think(now, cfg.client_frame_ms.min(250) as u8);
                if let Some(p) = predictors[i].as_mut() {
                    // Opt in on the wire and act on the input locally,
                    // a full round trip before the server confirms it.
                    cmd.predict_ack = Some(p.trailer_ack());
                    p.predict(&cmd);
                }
                stats.note_sent();
                arena_stats[cur_arena[i]].note_sent();
                let msg = ClientMessage::Move {
                    client_id: lo + i as u32,
                    cmd,
                };
                ctx.send(
                    port,
                    topology.arena_ports[cur_arena[i]][cur_thread[i]],
                    msg.to_bytes(),
                );
                // Always-active cadence with asynchronous jitter.
                let jitter = if cfg.jitter_ns > 0 {
                    let j = bots[i].rng.next_u32() as Nanos % (2 * cfg.jitter_ns);
                    j as i64 - cfg.jitter_ns as i64
                } else {
                    0
                };
                next_at[i] = (next_at[i] as i64 + frame_ns as i64 + jitter) as Nanos;
                if next_at[i] <= now {
                    next_at[i] = now + frame_ns / 2;
                }
            }
        }
        // Sleep until the next bot action (or leave), draining replies
        // meanwhile.
        let wake = (0..n)
            .filter(|&i| !left[i])
            .map(|i| next_at[i].min(leave_at[i]))
            .min()
            .unwrap_or(cfg.send_until);
        let deadline = wake.min(cfg.send_until);
        loop {
            let now = ctx.now();
            if now >= deadline {
                break;
            }
            if !ctx.wait_readable(port, Some(deadline)) {
                break;
            }
            while let Some(raw) = ctx.try_recv(port) {
                let Ok(msg) = ServerMessage::from_bytes(&raw.payload) else {
                    continue;
                };
                match msg {
                    ServerMessage::ConnectAck {
                        client_id,
                        arena,
                        spawn,
                    } => {
                        let i = client_id.wrapping_sub(lo) as usize;
                        if i < n && !acked[i] && !left[i] {
                            acked[i] = true;
                            backoff[i] = RETRY_MIN;
                            last_heard[i] = ctx.now();
                            // A (re-)Connect was acked: the session's
                            // reply-seq space starts over, so the
                            // duplicate-suppression window must too —
                            // otherwise every reply of the new session
                            // reads as a stale copy and the response
                            // accounting starves after a reconnect.
                            last_rx_seq[i] = -1;
                            if let Some(p) = predictors[i].as_mut() {
                                p.reset(spawn);
                            }
                            // The ack's arena id is the admission
                            // policy's placement: address that arena's
                            // ports from now on. The ack's source port
                            // further identifies the serving thread —
                            // a directory may have claimed our slot in
                            // any thread's home block.
                            let a = arena as usize;
                            if a < topology.arena_ports.len() {
                                cur_arena[i] = a;
                                if let Some(t) =
                                    topology.arena_ports[a].iter().position(|&p| p == raw.from)
                                {
                                    cur_thread[i] = t;
                                } else {
                                    cur_thread[i] =
                                        cur_thread[i].min(topology.arena_ports[a].len() - 1);
                                }
                            }
                            if !ever_acked[i] {
                                ever_acked[i] = true;
                                connected += 1;
                            }
                            // Start moving on the next tick.
                            next_at[i] = ctx.now();
                        } else if i < n && acked[i] && !left[i] {
                            // Unsolicited ack while already connected:
                            // either a supervised arena restored from
                            // its checkpoint re-announcing the slot, or
                            // a live migration's destination claiming
                            // the session. Re-home to the announced
                            // arena either way — after a handoff the
                            // old address is a despawned slot and moves
                            // sent there vanish until the starvation
                            // watchdog gives up.
                            let a = arena as usize;
                            if a < topology.arena_ports.len() {
                                if a != cur_arena[i] {
                                    rehomed += 1;
                                } else {
                                    restarts += 1;
                                }
                                cur_arena[i] = a;
                                if let Some(t) =
                                    topology.arena_ports[a].iter().position(|&p| p == raw.from)
                                {
                                    cur_thread[i] = t;
                                } else {
                                    cur_thread[i] =
                                        cur_thread[i].min(topology.arena_ports[a].len() - 1);
                                }
                            } else {
                                restarts += 1;
                            }
                            last_heard[i] = ctx.now();
                        }
                    }
                    ServerMessage::Reply {
                        client_id,
                        seq,
                        sent_at_echo,
                        assigned_thread,
                        origin,
                        delta,
                        entities,
                        removed,
                        predict,
                        ..
                    } => {
                        let i = client_id.wrapping_sub(lo) as usize;
                        if i < n {
                            let now = ctx.now();
                            last_heard[i] = now;
                            // Count each reply once: the fault fabric
                            // can duplicate datagrams, and seq echoes
                            // are strictly increasing per client.
                            let fresh = seq as i64 > last_rx_seq[i];
                            if fresh && sent_at_echo > 0 && now >= sent_at_echo {
                                stats.note_reply(now - sent_at_echo);
                                arena_stats[cur_arena[i]].note_reply(now - sent_at_echo);
                            }
                            if fresh {
                                if let (Some(p), Some(rp)) =
                                    (predictors[i].as_mut(), predict.as_ref())
                                {
                                    p.reconcile(origin, rp);
                                }
                            }
                            last_rx_seq[i] = last_rx_seq[i].max(seq as i64);
                            // Follow server steering (dynamic
                            // region-affine assignment) within the
                            // bot's current arena.
                            let t = assigned_thread as usize;
                            if t < topology.arena_ports[cur_arena[i]].len() {
                                cur_thread[i] = t;
                            }
                            bots[i].observe_update(origin, delta, &entities, &removed);
                        }
                    }
                    ServerMessage::Bye { client_id } => {
                        // Server reclaimed the slot: rejoin from scratch.
                        let i = client_id.wrapping_sub(lo) as usize;
                        if i < n && acked[i] && !left[i] {
                            acked[i] = false;
                            backoff[i] = RETRY_MIN;
                            next_at[i] = ctx.now();
                        }
                    }
                }
            }
        }
    }

    // Host-side swarm aggregates, written once per driver at task
    // end; no fabric task ever blocks on these sinks.
    stats_out
        .lock() // lockcheck: allow(raw-sync: host-side swarm stats sink, merged once at task end)
        .unwrap_or_else(PoisonError::into_inner)
        .merge(&stats);
    connected_out.fetch_add(connected, Ordering::Relaxed);
    restarts_out.fetch_add(restarts, Ordering::Relaxed);
    rehomed_out.fetch_add(rehomed, Ordering::Relaxed);
    let mut pred = parquake_metrics::PredictionStats::new();
    let mut in_flight = 0u64;
    for p in predictors.iter().flatten() {
        pred.merge(&p.stats);
        in_flight += p.in_flight();
    }
    prediction_out
        .lock() // lockcheck: allow(raw-sync: host-side swarm stats sink, merged once at task end)
        .unwrap_or_else(PoisonError::into_inner)
        .merge(&pred);
    predict_in_flight_out.fetch_add(in_flight, Ordering::Relaxed);
    let mut per = per_arena_out
        .lock() // lockcheck: allow(raw-sync: host-side per-arena stats sink, merged once at task end)
        .unwrap_or_else(PoisonError::into_inner);
    for (agg, mine) in per.iter_mut().zip(&arena_stats) {
        agg.merge(mine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_fabric::FabricKind;

    /// A stub server that acks every connect and echoes every move.
    fn stub_server(fabric: &Arc<dyn Fabric>, port: PortId, until: Nanos) {
        fabric.spawn(
            "stub-server",
            Some(0),
            Box::new(move |ctx| {
                while ctx.wait_readable(port, Some(until)) {
                    while let Some(raw) = ctx.try_recv(port) {
                        match ClientMessage::from_bytes(&raw.payload) {
                            Ok(ClientMessage::Connect { client_id, .. }) => {
                                let ack = ServerMessage::ConnectAck {
                                    client_id,
                                    spawn: parquake_math::Vec3::ZERO,
                                    arena: 0,
                                };
                                ctx.send(port, raw.from, ack.to_bytes());
                            }
                            Ok(ClientMessage::Move { client_id, cmd }) => {
                                let reply = ServerMessage::Reply {
                                    client_id,
                                    seq: cmd.seq,
                                    sent_at_echo: cmd.sent_at,
                                    frame: 0,
                                    assigned_thread: 0,
                                    origin: parquake_math::Vec3::ZERO,
                                    delta: false,
                                    entities: vec![],
                                    removed: vec![],
                                    events: vec![],
                                    predict: None,
                                };
                                ctx.send(port, raw.from, reply.to_bytes());
                            }
                            _ => {}
                        }
                    }
                }
            }),
        );
    }

    #[test]
    fn swarm_connects_and_measures_latency() {
        let fabric = FabricKind::VirtualSmp(Default::default()).build();
        let server_port = fabric.alloc_port();
        let until: Nanos = 2_000_000_000; // 2 virtual seconds
        stub_server(&fabric, server_port, until + 500_000_000);
        let cfg = BotSwarmConfig {
            drivers: 2,
            ..BotSwarmConfig::new(10, until)
        };
        let swarm = spawn_swarm(&fabric, &cfg, &[server_port], |_c| 0);
        fabric.run();

        assert_eq!(swarm.connected.load(Ordering::Relaxed), 10);
        let stats = swarm.stats.lock().unwrap();
        // 10 bots for ~2 s at 30 ms cadence ≈ 600+ moves.
        assert!(stats.sent > 400, "sent only {}", stats.sent);
        assert!(stats.received > 400, "received only {}", stats.received);
        // Round trip = 2 × link latency (0.15 ms each way) + stub time.
        let avg = stats.avg_latency_ms();
        assert!(avg > 0.25 && avg < 5.0, "avg latency {avg} ms");
    }

    #[test]
    fn bots_follow_thread_redirects() {
        // A two-port server: port A acks and immediately steers the bot
        // to thread 1; port B echoes moves. The bot must switch.
        let fabric = FabricKind::VirtualSmp(Default::default()).build();
        let port_a = fabric.alloc_port();
        let port_b = fabric.alloc_port();
        let until: Nanos = 1_500_000_000;
        let moves_at_b = Arc::new(Mutex::new(0u64));

        // Port A: acks connects, replies to moves with a redirect.
        fabric.spawn(
            "thread-a",
            Some(0),
            Box::new(move |ctx| {
                while ctx.wait_readable(port_a, Some(until)) {
                    while let Some(raw) = ctx.try_recv(port_a) {
                        match ClientMessage::from_bytes(&raw.payload) {
                            Ok(ClientMessage::Connect { client_id, .. }) => {
                                let ack = ServerMessage::ConnectAck {
                                    client_id,
                                    spawn: parquake_math::Vec3::ZERO,
                                    arena: 0,
                                };
                                ctx.send(port_a, raw.from, ack.to_bytes());
                            }
                            Ok(ClientMessage::Move { client_id, cmd }) => {
                                let reply = ServerMessage::Reply {
                                    client_id,
                                    seq: cmd.seq,
                                    sent_at_echo: cmd.sent_at,
                                    frame: 0,
                                    assigned_thread: 1, // go to B
                                    origin: parquake_math::Vec3::ZERO,
                                    delta: false,
                                    entities: vec![],
                                    removed: vec![],
                                    events: vec![],
                                    predict: None,
                                };
                                ctx.send(port_a, raw.from, reply.to_bytes());
                            }
                            _ => {}
                        }
                    }
                }
            }),
        );
        // Port B: counts the moves it receives and echoes them.
        let counter = moves_at_b.clone();
        fabric.spawn(
            "thread-b",
            Some(1),
            Box::new(move |ctx| {
                while ctx.wait_readable(port_b, Some(until)) {
                    while let Some(raw) = ctx.try_recv(port_b) {
                        if let Ok(ClientMessage::Move { client_id, cmd }) =
                            ClientMessage::from_bytes(&raw.payload)
                        {
                            *counter.lock().unwrap() += 1;
                            let reply = ServerMessage::Reply {
                                client_id,
                                seq: cmd.seq,
                                sent_at_echo: cmd.sent_at,
                                frame: 0,
                                assigned_thread: 1, // stay here
                                origin: parquake_math::Vec3::ZERO,
                                delta: false,
                                entities: vec![],
                                removed: vec![],
                                events: vec![],
                                predict: None,
                            };
                            ctx.send(port_b, raw.from, reply.to_bytes());
                        }
                    }
                }
            }),
        );

        let cfg = BotSwarmConfig {
            drivers: 1,
            ..BotSwarmConfig::new(2, until)
        };
        let swarm = spawn_swarm(&fabric, &cfg, &[port_a, port_b], |_c| 0);
        fabric.run();
        assert_eq!(swarm.connected.load(Ordering::Relaxed), 2);
        // After the first redirect, all further moves land on B.
        let at_b = *moves_at_b.lock().unwrap();
        assert!(
            at_b > 40,
            "bots never switched threads (moves at B: {at_b})"
        );
    }

    #[test]
    fn bots_rehome_on_unsolicited_cross_arena_acks() {
        // Arena 0 acks the connect, echoes a few moves, then announces
        // — unprompted — that the bot now lives in arena 1, exactly as
        // a live-migration destination re-acks the handed-off slot.
        // The bot must address arena 1 from then on.
        let fabric = FabricKind::VirtualSmp(Default::default()).build();
        let port_a = fabric.alloc_port();
        let port_b = fabric.alloc_port();
        let until: Nanos = 1_500_000_000;
        let moves_at_b = Arc::new(Mutex::new(0u64));

        fabric.spawn(
            "arena-0",
            Some(0),
            Box::new(move |ctx| {
                let mut moves = 0u64;
                let mut migrated = false;
                while ctx.wait_readable(port_a, Some(until)) {
                    while let Some(raw) = ctx.try_recv(port_a) {
                        match ClientMessage::from_bytes(&raw.payload) {
                            Ok(ClientMessage::Connect { client_id, .. }) => {
                                let ack = ServerMessage::ConnectAck {
                                    client_id,
                                    spawn: parquake_math::Vec3::ZERO,
                                    arena: 0,
                                };
                                ctx.send(port_a, raw.from, ack.to_bytes());
                            }
                            Ok(ClientMessage::Move { client_id, cmd }) => {
                                moves += 1;
                                let reply = ServerMessage::Reply {
                                    client_id,
                                    seq: cmd.seq,
                                    sent_at_echo: cmd.sent_at,
                                    frame: 0,
                                    assigned_thread: 0,
                                    origin: parquake_math::Vec3::ZERO,
                                    delta: false,
                                    entities: vec![],
                                    removed: vec![],
                                    events: vec![],
                                    predict: None,
                                };
                                ctx.send(port_a, raw.from, reply.to_bytes());
                                if moves >= 5 && !migrated {
                                    migrated = true;
                                    let ack = ServerMessage::ConnectAck {
                                        client_id,
                                        spawn: parquake_math::Vec3::ZERO,
                                        arena: 1,
                                    };
                                    ctx.send(port_a, raw.from, ack.to_bytes());
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }),
        );
        let counter = moves_at_b.clone();
        fabric.spawn(
            "arena-1",
            Some(1),
            Box::new(move |ctx| {
                while ctx.wait_readable(port_b, Some(until)) {
                    while let Some(raw) = ctx.try_recv(port_b) {
                        if let Ok(ClientMessage::Move { client_id, cmd }) =
                            ClientMessage::from_bytes(&raw.payload)
                        {
                            *counter.lock().unwrap() += 1;
                            let reply = ServerMessage::Reply {
                                client_id,
                                seq: cmd.seq,
                                sent_at_echo: cmd.sent_at,
                                frame: 0,
                                assigned_thread: 0,
                                origin: parquake_math::Vec3::ZERO,
                                delta: false,
                                entities: vec![],
                                removed: vec![],
                                events: vec![],
                                predict: None,
                            };
                            ctx.send(port_b, raw.from, reply.to_bytes());
                        }
                    }
                }
            }),
        );

        let topology = SwarmTopology {
            arena_ports: vec![vec![port_a], vec![port_b]],
            connect_port: None,
        };
        let cfg = BotSwarmConfig {
            drivers: 1,
            ..BotSwarmConfig::new(1, until)
        };
        let swarm = spawn_swarm_multi(&fabric, &cfg, &topology, |_c| (0, 0));
        fabric.run();
        assert_eq!(
            swarm.rehomed.load(Ordering::Relaxed),
            1,
            "the cross-arena re-ack was not counted as a re-homing"
        );
        assert_eq!(swarm.restarts_observed.load(Ordering::Relaxed), 0);
        let at_b = *moves_at_b.lock().unwrap();
        assert!(
            at_b > 10,
            "bot never followed the migration to arena 1 (moves at B: {at_b})"
        );
    }

    #[test]
    fn swarm_is_deterministic_on_virtual_fabric() {
        let run = || {
            let fabric = FabricKind::VirtualSmp(Default::default()).build();
            let server_port = fabric.alloc_port();
            let until: Nanos = 1_000_000_000;
            stub_server(&fabric, server_port, until + 100_000_000);
            let cfg = BotSwarmConfig {
                drivers: 3,
                ..BotSwarmConfig::new(7, until)
            };
            let swarm = spawn_swarm(&fabric, &cfg, &[server_port], |_c| 0);
            fabric.run();
            let s = swarm.stats.lock().unwrap();
            (s.sent, s.received, s.latency_sum_ns)
        };
        assert_eq!(run(), run());
    }
}
