//! Client-side prediction with server reconciliation.
//!
//! A predicting bot runs the shared movement kernel
//! ([`parquake_sim::step_world_only`]) on its own inputs the instant
//! they are sent, instead of waiting a round trip for the server's
//! reply — the standard QuakeWorld latency-hiding technique. Unacked
//! inputs sit in a ring; every trailered reply carries the server's
//! last-applied input seq and its perturbation epoch, and the client
//!
//! 1. retires ring entries up to the ack, judging the acked entry's
//!    predicted state against the server's authoritative state,
//! 2. adopts the authoritative state as the new base, and
//! 3. replays the still-unacked inputs on top of it (rollback+replay).
//!
//! The **divergence oracle** is the correctness instrument: whenever a
//! reply finds *no* inputs in flight and the slot's perturbation epoch
//! unchanged since the acked input was predicted, the predicted state
//! must equal the server's bit for bit — both sides ran the identical
//! kernel on the identical inputs from the identical base. Any oracle
//! mismatch is a prediction-kernel bug, never a tuning matter.

use std::collections::VecDeque;
use std::sync::Arc;

use parquake_bsp::BspWorld;
use parquake_math::Vec3;
use parquake_metrics::PredictionStats;
use parquake_protocol::{MoveCmd, ReplyPredict};
use parquake_sim::{step_world_only, PredictState};

/// Unacked-input ring capacity. At one input per 30 ms client frame
/// this is ~7.7 s of server silence before inputs are dropped — far
/// past the starvation watchdog, so overflow only happens under
/// pathological loss.
pub const PREDICT_RING_CAP: usize = 256;

/// One unacked input awaiting its authoritative verdict.
struct RingEntry {
    seq: u32,
    cmd: MoveCmd,
    /// Predicted state *after* applying `cmd`.
    predicted: PredictState,
    /// Server perturbation epoch adopted when this input was predicted;
    /// `None` before the first reconciliation (no epoch known yet, so
    /// the oracle stands down for this entry).
    perturb_base: Option<u32>,
}

/// Per-bot prediction state machine (DESIGN.md §14).
pub struct Predictor {
    map: Arc<BspWorld>,
    /// Current predicted player state — what the bot acts on.
    pub state: PredictState,
    ring: VecDeque<RingEntry>,
    /// Last server input-ack consumed (echoed in the Move trailer).
    last_server_ack: u32,
    /// Last perturbation epoch adopted from a reply.
    perturb_seen: Option<u32>,
    /// A ring overflow dropped entries unjudged; judgment and the
    /// oracle stand down until the next authoritative adoption.
    tainted: bool,
    pub stats: PredictionStats,
}

impl Predictor {
    /// `spawn_hint` seeds the predicted state before the first reply;
    /// the first reconciliation replaces it with authoritative state.
    pub fn new(map: Arc<BspWorld>, spawn_hint: Vec3) -> Predictor {
        Predictor {
            map,
            state: PredictState {
                pos: spawn_hint,
                vel: Vec3::ZERO,
                on_ground: false,
            },
            ring: VecDeque::new(),
            last_server_ack: 0,
            perturb_seen: None,
            tainted: false,
            stats: PredictionStats::new(),
        }
    }

    /// Ring entries still awaiting an ack (closes the ledger:
    /// `predicted == judged + dropped + in_flight`).
    pub fn in_flight(&self) -> u64 {
        self.ring.len() as u64
    }

    /// The ack to stamp into the outgoing move's prediction trailer:
    /// the last server input-ack this client has consumed (0 = none
    /// yet). Presence of the trailer is the opt-in signal.
    pub fn trailer_ack(&self) -> u32 {
        self.last_server_ack
    }

    /// Forget the session: a re-Connect was acked, so the server-side
    /// slot (and its input-seq space) is new. In-flight inputs will
    /// never be acked — they are counted dropped so the ledger still
    /// closes — and the oracle stands down until the next adoption.
    pub fn reset(&mut self, spawn: Vec3) {
        self.stats.dropped += self.ring.len() as u64;
        self.ring.clear();
        self.state = PredictState {
            pos: spawn,
            vel: Vec3::ZERO,
            on_ground: false,
        };
        self.last_server_ack = 0;
        self.perturb_seen = None;
        self.tainted = false;
    }

    /// Predict `cmd` locally: step the kernel, remember the input.
    pub fn predict(&mut self, cmd: &MoveCmd) {
        if self.ring.len() >= PREDICT_RING_CAP {
            self.ring.pop_front();
            self.stats.dropped += 1;
            self.stats.ring_overflows += 1;
            self.tainted = true;
        }
        self.state = step_world_only(&self.map, self.state, cmd);
        self.ring.push_back(RingEntry {
            seq: cmd.seq,
            cmd: *cmd,
            predicted: self.state,
            perturb_base: self.perturb_seen,
        });
        self.stats.predicted += 1;
    }

    /// Consume a trailered reply: retire acked inputs, judge the acked
    /// prediction, adopt authoritative state, replay the rest.
    /// `origin` is the reply's authoritative position.
    pub fn reconcile(&mut self, origin: Vec3, rp: &ReplyPredict) {
        self.stats.reconciled += 1;
        if rp.input_ack < self.last_server_ack {
            // Reordered stale reply: adopting it would roll the base
            // behind inputs the server has already applied. Drop it.
            return;
        }
        self.last_server_ack = rp.input_ack;
        let server = PredictState {
            pos: origin,
            vel: rp.vel,
            on_ground: rp.on_ground,
        };

        // Retire everything the server has applied. Only the entry at
        // the ack itself has an authoritative counterpart to compare
        // against; earlier entries are judged implicitly with it (the
        // kernel is deterministic, so a clean ack-entry means the whole
        // retired prefix replayed cleanly on the server too).
        let mut acked_entry: Option<(PredictState, Option<u32>)> = None;
        while let Some(front) = self.ring.front() {
            if rp.input_ack == 0 || front.seq > rp.input_ack {
                break;
            }
            let e = self.ring.pop_front().expect("front checked");
            self.stats.judged += 1;
            if e.seq == rp.input_ack {
                acked_entry = Some((e.predicted, e.perturb_base));
            }
        }

        let mispredicted = match acked_entry {
            Some((predicted, _)) => predicted != server,
            // Ack without a matching entry (overflow dropped it, or a
            // stale duplicate reply): nothing to compare.
            None => false,
        };
        if mispredicted {
            self.stats.mispredictions += 1;
        }

        // Divergence oracle: nothing in flight beyond the ack and no
        // perturbation since the acked input was predicted ⇒ predicted
        // state must equal the server's exactly.
        if let Some((predicted, Some(base))) = acked_entry {
            if self.ring.is_empty() && !self.tainted && base == rp.perturb {
                self.stats.oracle_checks += 1;
                if predicted != server {
                    self.stats.oracle_mismatches += 1;
                }
            }
        }

        // Adopt authority and roll the unacked inputs forward on top of
        // it. Replaying unconditionally (not only on mismatch) keeps
        // the client glued to the server through perturbations it
        // cannot see (knockback, player collisions).
        self.state = server;
        self.stats.depth.note(self.ring.len());
        for e in self.ring.iter_mut() {
            self.state = step_world_only(&self.map, self.state, &e.cmd);
            e.predicted = self.state;
            e.perturb_base = Some(rp.perturb);
            self.stats.replayed += 1;
        }
        self.perturb_seen = Some(rp.perturb);
        self.tainted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_math::Pcg32;
    use parquake_protocol::Buttons;
    use parquake_sim::{GameWorld, WorkCounters};

    fn cmd(seq: u32, yaw: f32, forward: f32, msec: u8) -> MoveCmd {
        MoveCmd {
            seq,
            sent_at: 0,
            pitch: 0.0,
            yaw,
            forward,
            side: 0.0,
            up: 0.0,
            buttons: Buttons(0),
            msec,
            predict_ack: Some(0),
        }
    }

    /// A server-side stand-in: the same kernel applied on an
    /// authoritative world with a real player entity.
    struct MiniServer {
        world: GameWorld,
        input_ack: u32,
        perturb: u32,
    }

    impl MiniServer {
        fn new(map: Arc<BspWorld>) -> MiniServer {
            let world = GameWorld::new(map, 4, 4);
            let mut rng = Pcg32::seeded(7);
            world.spawn_player(0, 1, &mut rng);
            MiniServer {
                world,
                input_ack: 0,
                perturb: 0,
            }
        }

        fn apply(&mut self, c: &MoveCmd) {
            let mut touched = Vec::new();
            let mut work = WorkCounters::new();
            parquake_sim::movement::run_move(&self.world, 0, 0, c, &[], 0, &mut touched, &mut work);
            self.world.relink_unlocked(0);
            self.input_ack = c.seq;
        }

        fn reply(&self) -> (Vec3, ReplyPredict) {
            let e = self.world.store.snapshot(0);
            (
                e.pos,
                ReplyPredict {
                    input_ack: self.input_ack,
                    perturb: self.perturb,
                    vel: e.vel,
                    on_ground: e.on_ground,
                },
            )
        }
    }

    fn setup() -> (Arc<BspWorld>, MiniServer) {
        let map = Arc::new(MapGenConfig::small_arena(3).generate());
        let server = MiniServer::new(map.clone());
        (map, server)
    }

    /// Lockstep (every input acked before the next): the oracle fires
    /// on every reply and must never mismatch — client and server run
    /// the same kernel from the same base.
    #[test]
    fn oracle_is_clean_in_lockstep() {
        let (map, mut server) = setup();
        let spawn = server.world.store.snapshot(0).pos;
        let mut p = Predictor::new(map, spawn);
        // Adopt the spawn state first (reply to no input).
        let (origin, rp) = server.reply();
        p.reconcile(origin, &rp);
        for seq in 1..=120u32 {
            let c = cmd(seq, (seq as f32 * 31.0) % 360.0 - 180.0, 320.0, 30);
            p.predict(&c);
            server.apply(&c);
            let (origin, rp) = server.reply();
            p.reconcile(origin, &rp);
            assert_eq!(p.state.pos, origin, "adopted state is authoritative");
        }
        assert_eq!(p.stats.oracle_checks, 120);
        assert_eq!(p.stats.oracle_mismatches, 0);
        assert_eq!(p.stats.mispredictions, 0);
        assert!(p.stats.closed(p.in_flight()), "ledger must close");
    }

    /// Deep pipelining (many inputs in flight) with acks landing late:
    /// replay keeps the client exact, so when the pipe finally drains
    /// the oracle still proves bit-equality.
    #[test]
    fn pipelined_inputs_reconcile_exactly() {
        let (map, mut server) = setup();
        let spawn = server.world.store.snapshot(0).pos;
        let mut p = Predictor::new(map, spawn);
        let (origin, rp) = server.reply();
        p.reconcile(origin, &rp);

        let cmds: Vec<MoveCmd> = (1..=60u32)
            .map(|s| cmd(s, (s as f32 * 57.0) % 360.0 - 180.0, 320.0, 25))
            .collect();
        // Client predicts 6 inputs ahead before each server ack, and
        // acks trail 3 inputs behind — the ring never fully drains
        // mid-run, so every reconcile replays a tail.
        let mut next_ack = 0usize;
        for (k, c) in cmds.iter().enumerate() {
            p.predict(c);
            if k % 6 == 5 {
                while next_ack + 3 <= k {
                    server.apply(&cmds[next_ack]);
                    next_ack += 1;
                }
                let (origin, rp) = server.reply();
                p.reconcile(origin, &rp);
            }
        }
        // Drain the tail.
        while next_ack < cmds.len() {
            server.apply(&cmds[next_ack]);
            next_ack += 1;
        }
        let (origin, rp) = server.reply();
        p.reconcile(origin, &rp);

        assert_eq!(p.in_flight(), 0);
        assert!(p.stats.oracle_checks >= 1, "drained pipe must be audited");
        assert_eq!(p.stats.oracle_mismatches, 0);
        assert_eq!(p.stats.mispredictions, 0, "pure replay predicts exactly");
        assert!(p.stats.depth.max() >= 3, "depth histogram saw the lag");
        assert!(p.stats.closed(0));
    }

    /// A server-side perturbation (external displacement the client
    /// cannot replay) is flagged by the epoch bump: the misprediction
    /// is counted, the oracle stands down, and the client re-converges.
    #[test]
    fn perturbation_counts_misprediction_but_not_oracle() {
        let (map, mut server) = setup();
        let spawn = server.world.store.snapshot(0).pos;
        let mut p = Predictor::new(map, spawn);
        let (origin, rp) = server.reply();
        p.reconcile(origin, &rp);

        let c1 = cmd(1, 10.0, 320.0, 30);
        p.predict(&c1);
        server.apply(&c1);
        // Knockback: the server shoves the player mid-flight and bumps
        // the perturbation epoch, exactly like the slot shadow does.
        server.world.store.with_mut(0, 0, |e| e.pos.z += 40.0);
        server.world.relink_unlocked(0);
        server.perturb += 1;
        let (origin, rp) = server.reply();
        p.reconcile(origin, &rp);

        assert_eq!(p.stats.mispredictions, 1);
        assert_eq!(
            p.stats.oracle_checks, 0,
            "epoch bump must disarm the oracle"
        );
        assert_eq!(p.state.pos, origin, "client adopted the shove");

        // Epoch now stable again: the next lockstep round is clean and
        // the oracle re-arms.
        let c2 = cmd(2, 20.0, 320.0, 30);
        p.predict(&c2);
        server.apply(&c2);
        let (origin, rp) = server.reply();
        p.reconcile(origin, &rp);
        assert_eq!(p.stats.oracle_checks, 1);
        assert_eq!(p.stats.oracle_mismatches, 0);
        assert!(p.stats.closed(p.in_flight()));
    }

    /// Ring overflow drops the oldest inputs as unjudged, poisons the
    /// oracle until the next adoption, and still closes the ledger.
    #[test]
    fn ring_overflow_drops_oldest_and_closes_ledger() {
        let (map, mut server) = setup();
        let spawn = server.world.store.snapshot(0).pos;
        let mut p = Predictor::new(map, spawn);
        let (origin, rp) = server.reply();
        p.reconcile(origin, &rp);

        let total = PREDICT_RING_CAP as u32 + 10;
        for seq in 1..=total {
            p.predict(&cmd(seq, 0.0, 320.0, 20));
        }
        assert_eq!(p.stats.ring_overflows, 10);
        assert_eq!(p.stats.dropped, 10);
        assert_eq!(p.in_flight(), PREDICT_RING_CAP as u64);
        assert!(p.stats.closed(p.in_flight()));

        // The server only ever saw input 5 (the rest were "lost"); its
        // ack retires nothing the client still holds — no judgment
        // against a dropped entry.
        for seq in 1..=5u32 {
            server.apply(&cmd(seq, 0.0, 320.0, 20));
        }
        let (origin, rp) = server.reply();
        p.reconcile(origin, &rp);
        assert_eq!(p.stats.oracle_checks, 0, "tainted ring never oracles");
        assert!(p.stats.closed(p.in_flight()));
    }

    /// Stale duplicate replies (same ack twice) must not double-judge.
    #[test]
    fn duplicate_acks_are_idempotent() {
        let (map, mut server) = setup();
        let spawn = server.world.store.snapshot(0).pos;
        let mut p = Predictor::new(map, spawn);
        let (origin, rp) = server.reply();
        p.reconcile(origin, &rp);

        let c = cmd(1, 0.0, 320.0, 30);
        p.predict(&c);
        server.apply(&c);
        let (origin, rp) = server.reply();
        p.reconcile(origin, &rp);
        let judged_once = p.stats.judged;
        p.reconcile(origin, &rp); // duplicated datagram
        assert_eq!(p.stats.judged, judged_once);
        assert_eq!(p.stats.mispredictions, 0);
        assert!(p.stats.closed(p.in_flight()));
    }
}
