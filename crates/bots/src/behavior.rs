//! Bot decision making.

use parquake_math::angles::{wrap_degrees, Angles};
use parquake_math::{Pcg32, Vec3};
use parquake_protocol::{Buttons, EntityKind, EntityUpdate, MoveCmd};

/// Tunable behaviour mix. Probabilities are per move command.
#[derive(Clone, Debug)]
pub struct BotBehavior {
    /// Chance of firing a hitscan attack (long-range, directional).
    pub attack_chance: f32,
    /// Chance of throwing a projectile (long-range, expanded).
    pub throw_chance: f32,
    /// Chance of jumping.
    pub jump_chance: f32,
    /// Maximum random yaw drift per command, degrees.
    pub turn_jitter: f32,
    /// Forward speed as a fraction of maximum (320 u/s).
    pub speed: f32,
    /// Chance per command of steering toward the nearest visible
    /// player (deathmatch clustering — the contention driver).
    pub seek_chance: f32,
}

impl BotBehavior {
    /// The default deathmatch mix used by the paper-reproduction runs.
    pub fn deathmatch() -> BotBehavior {
        BotBehavior {
            attack_chance: 0.12,
            throw_chance: 0.06,
            jump_chance: 0.05,
            turn_jitter: 25.0,
            speed: 1.0,
            seek_chance: 0.6,
        }
    }

    /// Pure wandering: no long-range interactions at all.
    pub fn wander() -> BotBehavior {
        BotBehavior {
            attack_chance: 0.0,
            throw_chance: 0.0,
            jump_chance: 0.02,
            seek_chance: 0.0,
            ..BotBehavior::deathmatch()
        }
    }

    /// Stationary idlers (protocol load without game load).
    pub fn idle() -> BotBehavior {
        BotBehavior {
            attack_chance: 0.0,
            throw_chance: 0.0,
            jump_chance: 0.0,
            turn_jitter: 0.0,
            speed: 0.0,
            seek_chance: 0.0,
        }
    }
}

/// One bot's evolving view of the game.
pub struct BotMind {
    pub client_id: u32,
    pub seq: u32,
    pub yaw: f32,
    pub rng: Pcg32,
    behavior: BotBehavior,
    /// Our origin from the last reply (authoritative).
    pub last_origin: Vec3,
    /// Origin from the reply before that (stuck detection).
    prev_origin: Vec3,
    /// Players seen in the most recent reply.
    visible_players: Vec<(u16, Vec3)>,
    /// Entity cache for delta-compressed replies (id -> update).
    cache: std::collections::HashMap<u16, EntityUpdate>,
    replies_seen: u64,
}

impl BotMind {
    pub fn new(client_id: u32, seed: u64, behavior: BotBehavior) -> BotMind {
        let mut rng = Pcg32::new(seed, client_id as u64);
        let yaw = rng.range_f32(-180.0, 180.0);
        BotMind {
            client_id,
            seq: 0,
            yaw,
            rng,
            behavior,
            last_origin: Vec3::ZERO,
            prev_origin: Vec3::ZERO,
            visible_players: Vec::new(),
            cache: std::collections::HashMap::new(),
            replies_seen: 0,
        }
    }

    /// Digest a full-state server reply.
    pub fn observe(&mut self, origin: Vec3, entities: &[EntityUpdate]) {
        self.observe_update(origin, false, entities, &[]);
    }

    /// Digest a reply, delta-compressed or full. In delta mode the
    /// update set is merged into the entity cache and `removed` entries
    /// are dropped; otherwise the cache is replaced.
    pub fn observe_update(
        &mut self,
        origin: Vec3,
        delta: bool,
        entities: &[EntityUpdate],
        removed: &[u16],
    ) {
        self.prev_origin = self.last_origin;
        self.last_origin = origin;
        if !delta {
            self.cache.clear();
        }
        for e in entities {
            self.cache.insert(e.id, *e);
        }
        for r in removed {
            self.cache.remove(r);
        }
        self.visible_players.clear();
        for e in self.cache.values() {
            if e.kind == EntityKind::Player && e.state > 0 {
                self.visible_players.push((e.id, e.pos));
            }
        }
        // Deterministic ordering for target selection.
        self.visible_players.sort_unstable_by_key(|&(id, _)| id);
        self.replies_seen += 1;
    }

    /// Produce the next move command.
    pub fn think(&mut self, now: u64, msec: u8) -> MoveCmd {
        self.seq += 1;
        let b = self.behavior.clone();

        // Stuck against a wall? Turn hard. Otherwise drift — or home in
        // on the nearest visible player (deathmatch clustering).
        let moved = self.last_origin.distance(self.prev_origin);
        if self.replies_seen >= 2 && moved < 1.0 && b.speed > 0.0 {
            self.yaw = wrap_degrees(self.yaw + self.rng.range_f32(90.0, 270.0));
        } else if b.seek_chance > 0.0
            && self.rng.chance(b.seek_chance)
            && !self.visible_players.is_empty()
        {
            let target = self
                .visible_players
                .iter()
                .min_by(|a, b| {
                    let da = a.1.distance_sq(self.last_origin);
                    let db = b.1.distance_sq(self.last_origin);
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|&(_, p)| p)
                .unwrap();
            let aim = Angles::looking_at(self.last_origin, target);
            let noise = self.rng.range_f32(-10.0, 10.0);
            self.yaw = wrap_degrees(aim.yaw + noise);
        } else {
            self.yaw = wrap_degrees(self.yaw + self.rng.range_f32(-b.turn_jitter, b.turn_jitter));
        }

        let mut buttons = Buttons::NONE;
        let mut pitch = 0.0;
        let mut yaw = self.yaw;
        if self.rng.chance(b.jump_chance) {
            buttons = buttons.with(Buttons::JUMP);
        }
        let wants_attack = self.rng.chance(b.attack_chance);
        let wants_throw = !wants_attack && self.rng.chance(b.throw_chance);
        if wants_attack || wants_throw {
            // Aim at the nearest visible player if any.
            if let Some(&(_, target)) = self.visible_players.iter().min_by(|a, b| {
                let da = a.1.distance_sq(self.last_origin);
                let db = b.1.distance_sq(self.last_origin);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            }) {
                let a = Angles::looking_at(self.last_origin, target);
                yaw = a.yaw;
                pitch = a.pitch;
            }
            buttons = buttons.with(if wants_attack {
                Buttons::ATTACK
            } else {
                Buttons::THROW
            });
        }

        MoveCmd {
            seq: self.seq,
            sent_at: now,
            pitch,
            yaw,
            forward: 320.0 * b.speed,
            side: 0.0,
            up: 0.0,
            buttons,
            msec,
            predict_ack: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_math::vec3::vec3;

    #[test]
    fn think_is_deterministic_per_seed() {
        let mut a = BotMind::new(3, 42, BotBehavior::deathmatch());
        let mut b = BotMind::new(3, 42, BotBehavior::deathmatch());
        for i in 0..50 {
            let ca = a.think(i, 30);
            let cb = b.think(i, 30);
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut m = BotMind::new(0, 1, BotBehavior::wander());
        let c1 = m.think(0, 30);
        let c2 = m.think(30, 30);
        assert_eq!(c2.seq, c1.seq + 1);
        assert_eq!(c2.sent_at, 30);
    }

    #[test]
    fn idle_bots_never_act() {
        let mut m = BotMind::new(0, 9, BotBehavior::idle());
        for i in 0..200 {
            let c = m.think(i, 30);
            assert_eq!(c.forward, 0.0);
            assert_eq!(c.buttons.0, 0);
        }
    }

    #[test]
    fn wander_bots_never_go_long_range() {
        let mut m = BotMind::new(0, 9, BotBehavior::wander());
        for i in 0..500 {
            let c = m.think(i, 30);
            assert!(!c.buttons.long_range());
        }
    }

    #[test]
    fn deathmatch_bots_eventually_attack() {
        let mut m = BotMind::new(0, 9, BotBehavior::deathmatch());
        let attacks = (0..500)
            .filter(|&i| m.think(i, 30).buttons.long_range())
            .count();
        assert!(attacks > 10, "only {attacks} long-range moves in 500");
        assert!(attacks < 250, "{attacks} long-range moves is too many");
    }

    #[test]
    fn attacks_aim_at_visible_players() {
        let mut m = BotMind::new(
            0,
            7,
            BotBehavior {
                attack_chance: 1.0,
                ..BotBehavior::deathmatch()
            },
        );
        m.observe(
            vec3(0.0, 0.0, 25.0),
            &[EntityUpdate {
                id: 5,
                kind: EntityKind::Player,
                state: 100,
                pos: vec3(100.0, 0.0, 25.0),
                yaw: 0.0,
            }],
        );
        m.observe(
            vec3(0.0, 0.0, 25.0),
            &[EntityUpdate {
                id: 5,
                kind: EntityKind::Player,
                state: 100,
                pos: vec3(100.0, 0.0, 25.0),
                yaw: 0.0,
            }],
        );
        let c = m.think(0, 30);
        assert!(c.buttons.has(Buttons::ATTACK));
        // Target due east: yaw ≈ 0.
        assert!(c.yaw.abs() < 1.0, "yaw = {}", c.yaw);
    }

    #[test]
    fn stuck_bots_turn_around() {
        let mut m = BotMind::new(0, 7, BotBehavior::wander());
        let p = vec3(50.0, 50.0, 25.0);
        m.observe(p, &[]);
        m.observe(p, &[]); // no progress between replies
        let before = m.yaw;
        m.think(0, 30);
        let delta = (m.yaw - before).abs();
        assert!((80.0..=280.0).contains(&delta), "turned only {delta}°");
    }
}
