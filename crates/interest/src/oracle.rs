//! The brute-force oracle: re-derive one viewer's reply set with the
//! original per-client scan and compare it to the sweep's output.
//!
//! [`InterestMode::SweepOracle`](crate::InterestMode::SweepOracle)
//! calls this for every reply the sweep produces. The scan here is
//! *uncharged* — its work counters are discarded — so an oracle run
//! spends exactly the virtual time a plain sweep run spends and stays
//! schedule-identical to it: zero mismatches then literally means the
//! sweep run's reply stream is the scan's, byte for byte.

use parquake_protocol::EntityUpdate;
use parquake_sim::visibility::build_reply_entities;
use parquake_sim::{EntityId, GameWorld, WorkCounters};

/// Scratch buffers for repeated oracle checks (the scan allocates
/// nothing when reused).
#[derive(Default)]
pub struct OracleScratch {
    out: Vec<EntityUpdate>,
    dist: Vec<(f32, EntityUpdate)>,
}

/// Does the per-client scan agree with `sweep_set` for `viewer`?
pub fn oracle_agrees(
    world: &GameWorld,
    viewer: EntityId,
    sweep_set: &[EntityUpdate],
    scratch: &mut OracleScratch,
) -> bool {
    let mut discard = WorkCounters::new();
    build_reply_entities(
        world,
        viewer,
        &mut scratch.out,
        &mut scratch.dist,
        &mut discard,
    );
    scratch.out == sweep_set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{index::EntityIndex, match_viewers, InterestStats};
    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_math::Pcg32;
    use std::sync::Arc;

    #[test]
    fn oracle_accepts_the_sweep_and_rejects_tampering() {
        let map = Arc::new(MapGenConfig::open_hall(21).generate());
        let w = GameWorld::new(map, 4, 8);
        let mut rng = Pcg32::seeded(21);
        for i in 0..8 {
            w.spawn_player(i, i as u32, &mut rng);
        }
        let mut work = WorkCounters::new();
        let mut stats = InterestStats::default();
        let index = EntityIndex::build(&w, &mut work);
        let viewers: Vec<EntityId> = (0..8).collect();
        let frame = match_viewers(&w, &index, &viewers, &mut work, &mut stats);
        let mut scratch = OracleScratch::default();
        for &v in &viewers {
            let set = frame.get(v).unwrap();
            assert!(oracle_agrees(&w, v, set, &mut scratch));
            // Dropping one entry must be caught.
            if !set.is_empty() {
                let tampered: Vec<EntityUpdate> = set[1..].to_vec();
                assert!(!oracle_agrees(&w, v, &tampered, &mut scratch));
            }
        }
    }
}
