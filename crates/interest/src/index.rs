//! The shared per-frame entity index: every active entity snapshotted
//! once, in id order, with its reply payload and room precomputed, plus
//! one coordinate-sorted view per horizontal axis.
//!
//! Building the index costs one O(capacity) walk and two O(E log E)
//! sorts — paid once per frame, shared by every viewer. The id-ordered
//! `entities` array doubles as the narrow phase's iteration order:
//! candidate indices sorted ascending recover exactly the order the
//! per-client scan visits entities in, which is what makes the sweep's
//! output (including truncation ties) byte-identical to the scan's.

use parquake_bsp::rooms::RoomId;
use parquake_math::Vec3;
use parquake_protocol::EntityUpdate;
use parquake_sim::{EntityId, GameWorld, WorkCounters};

/// One active entity, snapshotted at index-build time.
#[derive(Clone, Copy, Debug)]
pub struct IndexedEntity {
    pub id: EntityId,
    pub pos: Vec3,
    /// Room the entity stands in (precomputed once; the scan recomputes
    /// it per viewer).
    pub room: RoomId,
    /// The wire payload a reply would carry for this entity.
    pub update: EntityUpdate,
}

/// One axis of the index: entity coordinates in ascending order with a
/// parallel array of indices into [`EntityIndex::entities`].
#[derive(Clone, Debug, Default)]
pub struct AxisIndex {
    pub coords: Vec<f32>,
    pub slots: Vec<u32>,
}

impl AxisIndex {
    fn build(entities: &[IndexedEntity], coord: impl Fn(&IndexedEntity) -> f32) -> AxisIndex {
        let mut order: Vec<u32> = (0..entities.len() as u32).collect();
        order.sort_by(|&a, &b| {
            coord(&entities[a as usize]).total_cmp(&coord(&entities[b as usize]))
        });
        AxisIndex {
            coords: order
                .iter()
                .map(|&i| coord(&entities[i as usize]))
                .collect(),
            slots: order,
        }
    }
}

/// The per-frame index all viewers match against.
#[derive(Clone, Debug, Default)]
pub struct EntityIndex {
    /// Active entities in ascending id order (the scan's order).
    pub entities: Vec<IndexedEntity>,
    pub by_x: AxisIndex,
    pub by_y: AxisIndex,
}

impl EntityIndex {
    /// Snapshot every active entity and sort both axes. Charged to the
    /// caller as `interest_steps` (one step per entity walked, `n log n`
    /// per sort).
    pub fn build(world: &GameWorld, work: &mut WorkCounters) -> EntityIndex {
        let cap = world.store.capacity();
        let mut entities = Vec::with_capacity(cap);
        for id in 0..cap as EntityId {
            let e = world.store.snapshot(id);
            if !e.active {
                continue;
            }
            entities.push(IndexedEntity {
                id,
                pos: e.pos,
                room: world.map.rooms.room_of(e.pos),
                update: EntityUpdate {
                    id: e.id,
                    kind: e.wire_kind(),
                    state: e.wire_state(),
                    pos: e.pos,
                    yaw: e.yaw,
                },
            });
        }
        work.interest_steps += cap as u64 + 2 * sort_steps(entities.len());
        let by_x = AxisIndex::build(&entities, |e| e.pos.x);
        let by_y = AxisIndex::build(&entities, |e| e.pos.y);
        EntityIndex {
            entities,
            by_x,
            by_y,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }
}

/// Comparison-step estimate for sorting `n` keys: `n · ⌈log₂ n⌉`.
pub(crate) fn sort_steps(n: usize) -> u64 {
    let n = n as u64;
    if n < 2 {
        return n;
    }
    n * (u64::BITS - (n - 1).leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_math::Pcg32;
    use std::sync::Arc;

    #[test]
    fn index_holds_active_entities_in_id_order() {
        let map = Arc::new(MapGenConfig::open_hall(1).generate());
        let w = GameWorld::new(map, 4, 8);
        let mut rng = Pcg32::seeded(1);
        w.spawn_player(0, 0, &mut rng);
        w.spawn_player(3, 3, &mut rng);
        let mut work = WorkCounters::new();
        let idx = EntityIndex::build(&w, &mut work);
        // Players 0 and 3 plus all items and teleporters; idle
        // projectile slots and unspawned players are absent.
        let active: Vec<EntityId> = (0..w.store.capacity() as EntityId)
            .filter(|&id| w.store.snapshot(id).active)
            .collect();
        let indexed: Vec<EntityId> = idx.entities.iter().map(|e| e.id).collect();
        assert_eq!(indexed, active);
        assert!(work.interest_steps > 0, "index build must charge steps");
    }

    #[test]
    fn axis_views_are_sorted_and_complete() {
        let map = Arc::new(MapGenConfig::open_hall(2).generate());
        let w = GameWorld::new(map, 4, 16);
        let mut rng = Pcg32::seeded(2);
        for i in 0..16 {
            w.spawn_player(i, i as u32, &mut rng);
        }
        let mut work = WorkCounters::new();
        let idx = EntityIndex::build(&w, &mut work);
        for axis in [&idx.by_x, &idx.by_y] {
            assert_eq!(axis.coords.len(), idx.len());
            assert_eq!(axis.slots.len(), idx.len());
            assert!(axis.coords.windows(2).all(|p| p[0] <= p[1]), "unsorted");
            let mut seen: Vec<u32> = axis.slots.clone();
            seen.sort_unstable();
            assert!(seen.iter().enumerate().all(|(i, &s)| i as u32 == s));
        }
    }

    #[test]
    fn sort_steps_grows_superlinearly() {
        assert_eq!(sort_steps(0), 0);
        assert_eq!(sort_steps(1), 1);
        assert_eq!(sort_steps(2), 2);
        assert_eq!(sort_steps(1024), 1024 * 10);
    }
}
