//! Batch interest matching for `parquake`.
//!
//! The original server scopes each reply with a per-client scan over
//! every entity (`parquake_sim::visibility`) — O(players × entities)
//! per frame, the measured saturation driver. This crate replaces the
//! scan with the sort-based DDM sweep of Marzolla et al.: once per
//! frame the server builds one shared [`EntityIndex`] (active entities
//! sorted by X and by Y), then matches *all* viewers against it with
//! two linear merges per axis. Because entities are points, each
//! viewer's per-axis candidates form a contiguous range of the sorted
//! array, so the broad phase costs a shared O(E log E) sort plus
//! O(V log V + V + E) merges instead of V separate O(E) scans. A
//! narrow phase re-runs the scan's exact distance and room checks on
//! the few survivors, so the output is byte-identical to the scan —
//! provable on demand via [`InterestMode::SweepOracle`], which shadows
//! every reply with an uncharged brute-force scan and counts
//! mismatches (zero expected, asserted in tests and the
//! `interestsweep` figure).
//!
//! The sweep parallelizes trivially: the index is built once (by the
//! thread releasing the intra-frame barrier, in the parallel server)
//! and each worker matches only the viewers it owns.

pub mod index;
pub mod oracle;
pub mod sweep;

pub use index::EntityIndex;
pub use sweep::{match_viewers, InterestFrame};

/// How reply scoping is computed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InterestMode {
    /// The original per-client O(entities) scan (`visibility.rs`).
    #[default]
    Scan,
    /// Batch sort-based sweep: one shared index per frame, cheap
    /// per-client lookups.
    Sweep,
    /// Sweep, plus an uncharged brute-force scan shadowing every reply
    /// and counting mismatches (zero expected). Charges exactly what
    /// `Sweep` charges, so runs are schedule-identical to `Sweep`.
    SweepOracle,
}

impl InterestMode {
    /// Does this mode build and consume the shared index?
    #[inline]
    pub fn uses_sweep(&self) -> bool {
        !matches!(self, InterestMode::Scan)
    }

    /// Does this mode shadow replies with the brute-force oracle?
    #[inline]
    pub fn oracle(&self) -> bool {
        matches!(self, InterestMode::SweepOracle)
    }

    /// Parse a command-line flag value.
    pub fn from_flag(s: &str) -> Option<InterestMode> {
        match s {
            "scan" => Some(InterestMode::Scan),
            "sweep" => Some(InterestMode::Sweep),
            "sweep-oracle" => Some(InterestMode::SweepOracle),
            _ => None,
        }
    }

    /// Human-readable label (figure tables, udpd banner).
    pub fn label(&self) -> &'static str {
        match self {
            InterestMode::Scan => "scan",
            InterestMode::Sweep => "sweep",
            InterestMode::SweepOracle => "sweep-oracle",
        }
    }
}

/// Matching counters published when a run ends.
///
/// `pairs_skipped` is accumulated at two independent places — the axis
/// prune (entities never reached because they fall outside the
/// viewer's contiguous per-axis range) and the broad phase's
/// other-axis rejects — while `pairs_tested` counts narrow-phase
/// examinations. The identity below therefore cross-checks that the
/// sweep accounted for every (viewer, entity) pair exactly once; a
/// matcher that dropped or double-visited candidates cannot close it.
// lockcheck: identity(pairs_tested + pairs_skipped == pairs_total)
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InterestStats {
    /// Frames for which an entity index was built.
    pub frames: u64,
    /// Viewers matched (Σ per match pass).
    pub viewers: u64,
    /// Active entities indexed (Σ per frame).
    pub entities: u64,
    /// Candidate pairs in play: Σ viewers × indexed entities.
    pub pairs_total: u64,
    /// Pairs that reached the narrow phase (exact distance + room
    /// checks, including the viewer's own entity when it survives the
    /// broad phase).
    pub pairs_tested: u64,
    /// Pairs disposed of by the broad phase: axis-pruned (outside the
    /// per-axis range) plus other-axis rejects.
    pub pairs_skipped: u64,
    /// Replies shadowed by the brute-force oracle.
    pub oracle_checked: u64,
    /// Oracle comparisons where sweep and scan disagreed (zero
    /// expected).
    pub oracle_mismatches: u64,
}

impl InterestStats {
    pub fn merge(&mut self, o: &InterestStats) {
        self.frames += o.frames;
        self.viewers += o.viewers;
        self.entities += o.entities;
        self.pairs_total += o.pairs_total;
        self.pairs_tested += o.pairs_tested;
        self.pairs_skipped += o.pairs_skipped;
        self.oracle_checked += o.oracle_checked;
        self.oracle_mismatches += o.oracle_mismatches;
    }

    /// The pair-accounting identity: every candidate pair was either
    /// narrow-phase tested or broad-phase skipped.
    pub fn pairs_closed(&self) -> bool {
        self.pairs_tested + self.pairs_skipped == self.pairs_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_flags_round_trip() {
        for mode in [
            InterestMode::Scan,
            InterestMode::Sweep,
            InterestMode::SweepOracle,
        ] {
            assert_eq!(InterestMode::from_flag(mode.label()), Some(mode));
        }
        assert_eq!(InterestMode::from_flag("bogus"), None);
        assert!(!InterestMode::Scan.uses_sweep());
        assert!(InterestMode::Sweep.uses_sweep());
        assert!(InterestMode::SweepOracle.oracle());
        assert!(!InterestMode::Sweep.oracle());
    }

    #[test]
    fn pair_identity_closes_only_when_books_balance() {
        let closed = InterestStats {
            pairs_total: 100,
            pairs_tested: 30,
            pairs_skipped: 70,
            ..InterestStats::default()
        };
        assert!(closed.pairs_closed());
        let drifted = InterestStats {
            pairs_total: 100,
            pairs_tested: 30,
            pairs_skipped: 60,
            ..InterestStats::default()
        };
        assert!(!drifted.pairs_closed());
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = InterestStats {
            frames: 1,
            viewers: 2,
            entities: 3,
            pairs_total: 6,
            pairs_tested: 2,
            pairs_skipped: 4,
            oracle_checked: 1,
            oracle_mismatches: 0,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.frames, 2);
        assert_eq!(a.pairs_total, 12);
        assert!(a.pairs_closed());
    }
}
