//! The sort-based sweep: match every viewer against the shared
//! [`EntityIndex`] with two linear merges per axis.
//!
//! Entities are points, so a viewer's per-axis candidates — entities
//! whose coordinate falls inside `[center − R, center + R]` — form one
//! contiguous range of the coordinate-sorted array. Viewers all share
//! the radius `R` (the world's view distance), so sorting viewers by
//! center orders their lower *and* upper bounds simultaneously; one
//! monotone two-pointer pass per bound finds every range. The broad
//! phase then iterates the smaller of a viewer's two axis ranges and
//! tests the other axis directly; survivors are exact AABB candidates,
//! a superset of the sphere the scan uses. The narrow phase restores
//! id order and re-runs the scan's checks verbatim — same distance
//! test, same room gate, same stable nearest-first truncation — so the
//! result is byte-identical to `visibility::build_reply_entities`.

use parquake_protocol::{EntityUpdate, MAX_ENTITIES_PER_REPLY};
use parquake_sim::{EntityId, GameWorld, WorkCounters};

use crate::index::{sort_steps, AxisIndex, EntityIndex};
use crate::InterestStats;

/// One frame's precomputed interest sets, keyed by viewer entity id.
#[derive(Clone, Debug, Default)]
pub struct InterestFrame {
    ids: Vec<EntityId>,
    sets: Vec<Vec<EntityUpdate>>,
}

impl InterestFrame {
    /// The precomputed reply set for `viewer`, if it was matched.
    pub fn get(&self, viewer: EntityId) -> Option<&[EntityUpdate]> {
        self.ids
            .binary_search(&viewer)
            .ok()
            .map(|i| self.sets[i].as_slice())
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Match `viewers` (ascending entity ids) against the index. Returns
/// one reply set per viewer, byte-identical to what the per-client
/// scan would produce. Work is reported through `work`
/// (`interest_steps` for the sweep machinery, `visibility_checks` for
/// narrow-phase examinations) and the pair accounting through `stats`.
pub fn match_viewers(
    world: &GameWorld,
    index: &EntityIndex,
    viewers: &[EntityId],
    work: &mut WorkCounters,
    stats: &mut InterestStats,
) -> InterestFrame {
    debug_assert!(viewers.windows(2).all(|p| p[0] < p[1]), "viewers unsorted");
    let e_n = index.len();
    let v_n = viewers.len();
    stats.viewers += v_n as u64;
    stats.entities += e_n as u64;
    stats.pairs_total += (v_n * e_n) as u64;

    let r = world.max_view_dist;
    let max_d2 = r * r;
    let centers: Vec<parquake_math::Vec3> = viewers
        .iter()
        .map(|&id| world.store.snapshot(id).pos)
        .collect();

    let cx: Vec<f32> = centers.iter().map(|p| p.x).collect();
    let cy: Vec<f32> = centers.iter().map(|p| p.y).collect();
    let rx = axis_ranges(&index.by_x, &cx, r, work);
    let ry = axis_ranges(&index.by_y, &cy, r, work);

    let mut sets = Vec::with_capacity(v_n);
    let mut cand: Vec<u32> = Vec::new();
    let mut scratch: Vec<(f32, EntityUpdate)> = Vec::new();
    for (vi, &vid) in viewers.iter().enumerate() {
        let me = centers[vi];
        let (sx, ex) = rx[vi];
        let (sy, ey) = ry[vi];
        let nx = (ex - sx) as usize;
        let ny = (ey - sy) as usize;

        // Broad phase: walk the smaller axis range, test the other
        // axis coordinate directly.
        cand.clear();
        let broad = nx.min(ny);
        if nx <= ny {
            for k in sx..ex {
                let slot = index.by_x.slots[k as usize];
                if (index.entities[slot as usize].pos.y - me.y).abs() <= r {
                    cand.push(slot);
                }
            }
        } else {
            for k in sy..ey {
                let slot = index.by_y.slots[k as usize];
                if (index.entities[slot as usize].pos.x - me.x).abs() <= r {
                    cand.push(slot);
                }
            }
        }
        work.interest_steps += broad as u64;
        // Axis prune: entities outside the walked range were never
        // touched. Other-axis rejects: walked but discarded.
        stats.pairs_skipped += (e_n - broad) as u64;
        stats.pairs_skipped += (broad - cand.len()) as u64;

        // Narrow phase: ascending indices are ascending ids, which is
        // the scan's iteration order.
        cand.sort_unstable();
        work.interest_steps += sort_steps(cand.len());
        stats.pairs_tested += cand.len() as u64;

        let my_room = world.map.rooms.room_of(me);
        scratch.clear();
        for &slot in &cand {
            let ent = &index.entities[slot as usize];
            if ent.id == vid {
                continue;
            }
            work.visibility_checks += 1;
            let d2 = ent.pos.distance_sq(me);
            if d2 > max_d2 {
                continue;
            }
            if !world.map.rooms.rooms_visible(my_room, ent.room) {
                continue;
            }
            scratch.push((d2, ent.update));
        }
        if scratch.len() > MAX_ENTITIES_PER_REPLY {
            scratch.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            scratch.truncate(MAX_ENTITIES_PER_REPLY);
        }
        sets.push(scratch.iter().map(|&(_, u)| u).collect());
    }

    InterestFrame {
        ids: viewers.to_vec(),
        sets,
    }
}

/// For every viewer center, the contiguous `[start, end)` range of the
/// axis array whose coordinates fall inside `center ± r`. One sort of
/// the viewers by center plus two monotone merge passes — the DDM
/// sweep's core.
fn axis_ranges(
    axis: &AxisIndex,
    centers: &[f32],
    r: f32,
    work: &mut WorkCounters,
) -> Vec<(u32, u32)> {
    let v_n = centers.len();
    let mut order: Vec<u32> = (0..v_n as u32).collect();
    order.sort_by(|&a, &b| centers[a as usize].total_cmp(&centers[b as usize]));
    work.interest_steps += sort_steps(v_n);

    let coords = &axis.coords;
    let n = coords.len();
    let mut ranges = vec![(0u32, 0u32); v_n];
    let (mut lo, mut hi) = (0usize, 0usize);
    for &vi in &order {
        let c = centers[vi as usize];
        while lo < n && coords[lo] < c - r {
            lo += 1;
            work.interest_steps += 1;
        }
        while hi < n && coords[hi] <= c + r {
            hi += 1;
            work.interest_steps += 1;
        }
        ranges[vi as usize] = (lo as u32, hi as u32);
        work.interest_steps += 1;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_bsp::mapgen::MapGenConfig;
    use parquake_math::vec3::vec3;
    use parquake_math::Pcg32;
    use parquake_sim::visibility::build_reply_entities;
    use std::sync::Arc;

    fn scan(world: &GameWorld, viewer: EntityId) -> Vec<EntityUpdate> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut work = WorkCounters::new();
        build_reply_entities(world, viewer, &mut out, &mut scratch, &mut work);
        out
    }

    fn sweep_all(world: &GameWorld, viewers: &[EntityId]) -> (InterestFrame, InterestStats) {
        let mut work = WorkCounters::new();
        let mut stats = InterestStats::default();
        let index = EntityIndex::build(world, &mut work);
        stats.frames += 1;
        let frame = match_viewers(world, &index, viewers, &mut work, &mut stats);
        (frame, stats)
    }

    /// Sweep output equals the scan for every viewer, and the pair
    /// accounting closes.
    fn assert_matches_scan(world: &GameWorld, viewers: &[EntityId]) {
        let (frame, stats) = sweep_all(world, viewers);
        for &v in viewers {
            assert_eq!(
                frame.get(v).expect("viewer matched"),
                scan(world, v).as_slice(),
                "sweep != scan for viewer {v}"
            );
        }
        assert!(stats.pairs_closed(), "{stats:?}");
    }

    #[test]
    fn sweep_equals_scan_in_an_open_hall() {
        let map = Arc::new(MapGenConfig::open_hall(7).generate());
        let w = GameWorld::new(map, 4, 16);
        let mut rng = Pcg32::seeded(7);
        for i in 0..16 {
            w.spawn_player(i, i as u32, &mut rng);
        }
        assert_matches_scan(&w, &(0..16).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_equals_scan_across_a_maze() {
        let map = Arc::new(MapGenConfig::large_arena(9).generate());
        let w = GameWorld::new(map, 4, 32);
        let mut rng = Pcg32::seeded(9);
        for i in 0..32 {
            w.spawn_player(i, i as u32, &mut rng);
        }
        assert_matches_scan(&w, &(0..32).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_equals_scan_with_a_short_view_distance() {
        let map = Arc::new(MapGenConfig::large_arena(11).generate());
        let mut w = GameWorld::new(map, 4, 32);
        w.max_view_dist = 300.0;
        let mut rng = Pcg32::seeded(11);
        for i in 0..32 {
            w.spawn_player(i, i as u32, &mut rng);
        }
        assert_matches_scan(&w, &(0..32).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_preserves_truncation_order_in_a_crowd() {
        // 200 players clustered around player 0 (the scan's own cap
        // test): more visible than fits, so nearest-first truncation
        // and its tie-breaking must match exactly.
        let map = Arc::new(MapGenConfig::open_hall(5).generate());
        let w = GameWorld::new(map, 4, 200);
        let mut rng = Pcg32::seeded(5);
        for i in 0..200 {
            w.spawn_player(i, i as u32, &mut rng);
        }
        let p0 = w.store.snapshot(0).pos;
        for i in 1..200u16 {
            w.store.with_mut(i, 0, |e| {
                e.pos = p0 + vec3((i as f32) * 3.0, 0.0, 0.0);
            });
        }
        let viewers: Vec<EntityId> = (0..200).collect();
        let (frame, stats) = sweep_all(&w, &viewers);
        assert_eq!(frame.get(0).unwrap().len(), MAX_ENTITIES_PER_REPLY);
        for &v in &viewers {
            assert_eq!(frame.get(v).unwrap(), scan(&w, v).as_slice());
        }
        assert!(stats.pairs_closed(), "{stats:?}");
    }

    #[test]
    fn sweep_skips_most_pairs_when_views_are_narrow() {
        // With a short view distance in a big maze, the broad phase
        // must dispose of the overwhelming majority of pairs.
        let map = Arc::new(MapGenConfig::large_arena(13).generate());
        let mut w = GameWorld::new(map, 4, 32);
        w.max_view_dist = 250.0;
        let mut rng = Pcg32::seeded(13);
        for i in 0..32 {
            w.spawn_player(i, i as u32, &mut rng);
        }
        let (_, stats) = sweep_all(&w, &(0..32).collect::<Vec<_>>());
        assert!(stats.pairs_closed(), "{stats:?}");
        assert!(
            stats.pairs_skipped > stats.pairs_tested,
            "no pruning: {stats:?}"
        );
    }

    #[test]
    fn unmatched_viewers_are_absent_from_the_frame() {
        let map = Arc::new(MapGenConfig::open_hall(3).generate());
        let w = GameWorld::new(map, 4, 8);
        let mut rng = Pcg32::seeded(3);
        for i in 0..4 {
            w.spawn_player(i, i as u32, &mut rng);
        }
        let (frame, _) = sweep_all(&w, &[0, 2]);
        assert!(frame.get(0).is_some());
        assert!(frame.get(1).is_none());
        assert_eq!(frame.len(), 2);
    }
}
