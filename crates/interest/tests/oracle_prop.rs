//! Property-based oracle: on random worlds — random maps, player
//! positions, view distances and inactive entities — the sweep's
//! interest set must equal the per-client scan *exactly*, including
//! the nearest-first truncation order, and the pair accounting
//! identity must close.

use std::sync::Arc;

use parquake_bsp::mapgen::MapGenConfig;
use parquake_interest::{match_viewers, EntityIndex, InterestStats};
use parquake_math::vec3::vec3;
use parquake_math::Pcg32;
use parquake_sim::visibility::build_reply_entities;
use parquake_sim::{EntityId, GameWorld, WorkCounters};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct RandomWorld {
    map: u8,
    players: u16,
    /// Per-player (x, y) position as a fraction of the map footprint
    /// (players beyond this list keep their spawn point).
    spots: Vec<(f32, f32)>,
    view_dist: f32,
    /// Player indices to despawn (mod `players`): inactive entities
    /// must be invisible to both matchers.
    gone: Vec<u16>,
}

fn arb_world() -> impl Strategy<Value = RandomWorld> {
    (
        0u8..3,
        2u16..40,
        prop::collection::vec((0.05f32..0.95, 0.05f32..0.95), 0..40),
        50.0f32..2000.0,
        prop::collection::vec(any::<u16>(), 0..6),
    )
        .prop_map(|(map, players, spots, view_dist, gone)| RandomWorld {
            map,
            players,
            spots,
            view_dist,
            gone,
        })
}

fn build(rw: &RandomWorld) -> GameWorld {
    let cfg = match rw.map {
        0 => MapGenConfig::open_hall(rw.map as u64 + 3),
        1 => MapGenConfig::small_arena(11),
        _ => MapGenConfig::large_arena(17),
    };
    let (fx, fy) = cfg.footprint();
    let map = Arc::new(cfg.generate());
    let mut w = GameWorld::new(map, 4, rw.players);
    w.max_view_dist = rw.view_dist;
    let mut rng = Pcg32::seeded(rw.players as u64);
    for i in 0..rw.players {
        w.spawn_player(i, i as u32, &mut rng);
    }
    // Teleport players to arbitrary coordinates. Interest matching
    // reads raw positions — it must agree with the scan even for
    // positions movement would never produce (inside walls, etc.).
    for (i, &(px, py)) in rw.spots.iter().enumerate() {
        let idx = (i as u16) % rw.players;
        let z = w.store.snapshot(idx).pos.z;
        w.store.with_mut(idx, 0, |e| {
            e.pos = vec3(px * fx, py * fy, z);
        });
        w.relink_unlocked(idx);
    }
    for &g in &rw.gone {
        w.despawn_player(g % rw.players);
    }
    w
}

fn scan(world: &GameWorld, viewer: EntityId) -> Vec<parquake_protocol::EntityUpdate> {
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    let mut work = WorkCounters::new();
    build_reply_entities(world, viewer, &mut out, &mut scratch, &mut work);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sweep_equals_scan_on_random_worlds(rw in arb_world()) {
        let w = build(&rw);
        let viewers: Vec<EntityId> = (0..rw.players)
            .filter(|&i| w.store.snapshot(i).active)
            .collect();
        let mut work = WorkCounters::new();
        let mut stats = InterestStats::default();
        let index = EntityIndex::build(&w, &mut work);
        let frame = match_viewers(&w, &index, &viewers, &mut work, &mut stats);
        for &v in &viewers {
            let swept = frame.get(v).expect("every viewer is matched");
            let scanned = scan(&w, v);
            prop_assert_eq!(
                swept,
                scanned.as_slice(),
                "sweep != scan for viewer {} on {:?}",
                v,
                rw
            );
        }
        prop_assert!(stats.pairs_closed(), "pair accounting open: {:?}", stats);
        prop_assert_eq!(stats.viewers, viewers.len() as u64);
    }
}
