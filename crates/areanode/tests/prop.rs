//! Property-based tests for the areanode tree.

use parquake_areanode::{AreanodeTree, LeafSet, LinkTable};
use parquake_math::vec3::vec3;
use parquake_math::{Aabb, Vec3};
use proptest::prelude::*;

const W: f32 = 2048.0;

fn world() -> Aabb {
    Aabb::new(vec3(0.0, 0.0, 0.0), vec3(W, W, 256.0))
}

fn arb_box() -> impl Strategy<Value = Aabb> {
    (0.0f32..W, 0.0f32..W, 1.0f32..300.0, 1.0f32..300.0).prop_map(|(x, y, w, h)| {
        Aabb::new(vec3(x, y, 10.0), vec3((x + w).min(W), (y + h).min(W), 60.0))
    })
}

proptest! {
    #[test]
    fn linked_node_contains_box(b in arb_box(), depth in 1u32..6) {
        let t = AreanodeTree::new(world(), depth);
        let id = t.node_for_box(&b);
        prop_assert!(t.node(id).bounds.contains(&b));
    }

    #[test]
    fn linked_node_is_deepest_containing(b in arb_box()) {
        let t = AreanodeTree::new(world(), 4);
        let id = t.node_for_box(&b);
        // No child of the chosen node fully contains the box.
        let n = t.node(id);
        if !n.is_leaf() {
            for c in n.children {
                prop_assert!(!t.node(c).bounds.contains(&b));
            }
        }
    }

    #[test]
    fn lock_plan_matches_brute_force(b in arb_box(), depth in 1u32..6) {
        let t = AreanodeTree::new(world(), depth);
        let mut plan = LeafSet::new();
        t.leaves_overlapping(&b, &mut plan);
        let brute: Vec<u32> = t
            .all_leaves()
            .iter()
            .copied()
            .filter(|&l| t.node(l).bounds.intersects(&b))
            .collect();
        prop_assert_eq!(plan.ids(), &brute[..]);
    }

    #[test]
    fn lock_plan_is_sorted_and_unique(b in arb_box()) {
        let t = AreanodeTree::new(world(), 5);
        let mut plan = LeafSet::new();
        t.leaves_overlapping(&b, &mut plan);
        prop_assert!(plan.ids().windows(2).all(|w| w[0] < w[1]));
        prop_assert!(!plan.is_empty());
    }

    #[test]
    fn nodes_overlapping_is_superset_of_plan_and_ancestors(b in arb_box()) {
        let t = AreanodeTree::new(world(), 4);
        let mut plan = LeafSet::new();
        t.leaves_overlapping(&b, &mut plan);
        let mut nodes = Vec::new();
        t.nodes_overlapping(&b, &mut nodes);
        for &leaf in plan.ids() {
            prop_assert!(nodes.contains(&leaf));
            for anc in t.ancestors(leaf) {
                prop_assert!(nodes.contains(&anc), "missing ancestor {anc}");
            }
        }
    }

    #[test]
    fn link_unlink_roundtrip(boxes in prop::collection::vec(arb_box(), 1..32)) {
        let t = AreanodeTree::new(world(), 4);
        let mut links = LinkTable::new(t.node_count());
        links.set_checking(false);
        let nodes: Vec<u32> = boxes.iter().enumerate().map(|(i, b)| {
            let n = t.node_for_box(b);
            links.push(n, 0, 1000 + i as u32);
            n
        }).collect();
        // Every link must be findable where we put it.
        for (i, &n) in nodes.iter().enumerate() {
            links.with_list(n, 0, |l| assert!(l.contains(&(1000 + i as u32))));
        }
        links.clear_all();
        prop_assert_eq!(links.total_links(), 0);
    }

    #[test]
    fn leafset_merge_is_union(a in prop::collection::vec(0u32..64, 0..20),
                              b in prop::collection::vec(0u32..64, 0..20)) {
        let mut sa = LeafSet::new();
        sa.assign(&a);
        let mut sb = LeafSet::new();
        sb.assign(&b);
        let mut merged = sa.clone();
        merged.merge(&sb);
        let mut expect: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(merged.ids(), &expect[..]);
    }

    #[test]
    fn deeper_trees_lock_smaller_world_fraction(b in arb_box()) {
        // Figure 7(b)'s mechanism: the fraction of the world locked per
        // request shrinks (weakly) as the tree deepens.
        let mut plan = LeafSet::new();
        let mut prev_frac = f32::INFINITY;
        for depth in 1..=5 {
            let t = AreanodeTree::new(world(), depth);
            t.leaves_overlapping(&b, &mut plan);
            let frac = plan.len() as f32 / t.leaf_count() as f32;
            prop_assert!(frac <= prev_frac + 1e-6,
                "depth {depth}: fraction {frac} grew from {prev_frac}");
            prev_frac = frac;
        }
    }

    #[test]
    fn tiny_point_box_always_single_leaf_or_plane(x in 1.0f32..W-1.0, y in 1.0f32..W-1.0) {
        let t = AreanodeTree::new(world(), 4);
        let b = Aabb::point(vec3(x, y, 50.0)).inflated(Vec3::splat(0.01));
        let mut plan = LeafSet::new();
        t.leaves_overlapping(&b, &mut plan);
        // A near-point box overlaps at most 4 leaves (at a corner).
        prop_assert!((1..=4).contains(&plan.len()));
    }
}
