//! Static areanode tree geometry and lock-plan queries.

use parquake_math::{Aabb, Axis, AxisPlane, Side};

/// Index of an areanode within its tree. The root is always `0`.
/// Node indices double as **lock ids**: the ordered-locking protocol
/// acquires leaves in ascending `NodeId` order.
pub type NodeId = u32;

/// One areanode. Interior nodes carry a split plane; leaves do not.
#[derive(Clone, Debug)]
pub struct Areanode {
    /// The world sub-volume this node represents.
    pub bounds: Aabb,
    /// Split plane (interior nodes only).
    pub plane: Option<AxisPlane>,
    /// `[front, back]` children (interior nodes only).
    pub children: [NodeId; 2],
    /// Parent node (root has none).
    pub parent: Option<NodeId>,
    /// Depth in the tree (root = 0).
    pub depth: u32,
}

impl Areanode {
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.plane.is_none()
    }
}

/// The balanced binary areanode tree of paper §2.2.
///
/// Splits alternate between the X and Y axes (the structure is 2D: all
/// nodes span the full world height). With `depth = 4` — the server's
/// default — the tree has 31 nodes, 16 of them leaves; the paper sweeps
/// `depth` 1..=5 (3..=63 nodes) in Figure 7(b).
pub struct AreanodeTree {
    nodes: Vec<Areanode>,
    leaves: Vec<NodeId>,
    depth: u32,
}

impl AreanodeTree {
    /// Build a tree of the given depth over `bounds`. `depth` is the
    /// number of split levels: the tree has `2^(depth+1) - 1` nodes and
    /// `2^depth` leaves. The first split uses the world's longer
    /// horizontal axis; deeper levels alternate.
    pub fn new(bounds: Aabb, depth: u32) -> AreanodeTree {
        assert!(depth >= 1, "areanode tree needs at least one split");
        assert!(depth <= 12, "areanode depth {depth} is unreasonable");
        let size = bounds.size();
        let first_axis = if size.x >= size.y { Axis::X } else { Axis::Y };
        let mut tree = AreanodeTree {
            nodes: Vec::with_capacity((1usize << (depth + 1)) - 1),
            leaves: Vec::with_capacity(1usize << depth),
            depth,
        };
        tree.build(bounds, first_axis, 0, None);
        tree.leaves.sort_unstable();
        tree
    }

    fn build(&mut self, bounds: Aabb, axis: Axis, depth: u32, parent: Option<NodeId>) -> NodeId {
        let id = self.nodes.len() as NodeId;
        if depth == self.depth {
            self.nodes.push(Areanode {
                bounds,
                plane: None,
                children: [0, 0],
                parent,
                depth,
            });
            self.leaves.push(id);
            return id;
        }
        let ai = axis.index();
        let mid = (bounds.min[ai] + bounds.max[ai]) * 0.5;
        let plane = AxisPlane::new(axis, mid);
        self.nodes.push(Areanode {
            bounds,
            plane: Some(plane),
            children: [0, 0],
            parent,
            depth,
        });
        let mut front_bounds = bounds;
        front_bounds.min[ai] = mid;
        let mut back_bounds = bounds;
        back_bounds.max[ai] = mid;
        let next = axis.next_horizontal();
        let front = self.build(front_bounds, next, depth + 1, Some(id));
        let back = self.build(back_bounds, next, depth + 1, Some(id));
        self.nodes[id as usize].children = [front, back];
        id
    }

    /// Total node count (paper's "total number of areanodes").
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    #[inline]
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Split depth the tree was built with.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The root node id (always 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    #[inline]
    pub fn node(&self, id: NodeId) -> &Areanode {
        &self.nodes[id as usize]
    }

    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id as usize].is_leaf()
    }

    /// All leaf ids in ascending order (the conservative "lock the whole
    /// map" plan used for long-range interactions in the baseline
    /// policy, paper §4.3).
    #[inline]
    pub fn all_leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// The node an object with bounding box `b` links to: the deepest
    /// node whose region entirely contains `b` on the split axes. An
    /// object crossing a division plane stops at that plane's node — the
    /// paper's "associated with a unique parent of the leafs they
    /// cross".
    pub fn node_for_box(&self, b: &Aabb) -> NodeId {
        let mut cur = 0 as NodeId;
        loop {
            let node = &self.nodes[cur as usize];
            let Some(plane) = node.plane else {
                return cur;
            };
            match plane.box_side(b) {
                Side::Front => cur = node.children[0],
                Side::Back => cur = node.children[1],
                Side::Both => return cur,
            }
        }
    }

    /// Collect the leaves whose regions overlap `b`, in ascending id
    /// order, into `out` (cleared first). Returns the number of tree
    /// nodes visited (a work metric).
    ///
    /// This is the **lock plan** for a move with bounding box `b`:
    /// acquiring exactly these leaves in the returned order is
    /// deadlock-free because every thread orders identically.
    pub fn leaves_overlapping(&self, b: &Aabb, out: &mut LeafSet) -> u32 {
        out.clear();
        let mut visited = 0u32;
        self.collect_leaves(0, b, out, &mut visited);
        out.ids.sort_unstable();
        visited
    }

    fn collect_leaves(&self, id: NodeId, b: &Aabb, out: &mut LeafSet, visited: &mut u32) {
        *visited += 1;
        let node = &self.nodes[id as usize];
        let Some(plane) = node.plane else {
            out.ids.push(id);
            return;
        };
        match plane.box_side(b) {
            Side::Front => self.collect_leaves(node.children[0], b, out, visited),
            Side::Back => self.collect_leaves(node.children[1], b, out, visited),
            Side::Both => {
                self.collect_leaves(node.children[0], b, out, visited);
                self.collect_leaves(node.children[1], b, out, visited);
            }
        }
    }

    /// Collect *all* nodes (parents and leaves) whose regions overlap
    /// `b`, in visit (pre)order — the nodes whose object lists a
    /// candidate-collection traversal reads (paper §2.3 step 2).
    pub fn nodes_overlapping(&self, b: &Aabb, out: &mut Vec<NodeId>) -> u32 {
        out.clear();
        let mut visited = 0u32;
        self.collect_nodes(0, b, out, &mut visited);
        visited
    }

    fn collect_nodes(&self, id: NodeId, b: &Aabb, out: &mut Vec<NodeId>, visited: &mut u32) {
        *visited += 1;
        out.push(id);
        let node = &self.nodes[id as usize];
        let Some(plane) = node.plane else {
            return;
        };
        match plane.box_side(b) {
            Side::Front => self.collect_nodes(node.children[0], b, out, visited),
            Side::Back => self.collect_nodes(node.children[1], b, out, visited),
            Side::Both => {
                self.collect_nodes(node.children[0], b, out, visited);
                self.collect_nodes(node.children[1], b, out, visited);
            }
        }
    }

    /// Chain of ancestors of `id`, root last.
    pub fn ancestors(&self, mut id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        while let Some(p) = self.nodes[id as usize].parent {
            out.push(p);
            id = p;
        }
        out
    }
}

/// An ordered, deduplicated set of leaf node ids: the lock acquisition
/// plan for one request. Kept as a reusable buffer to avoid per-request
/// allocation in the hot path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LeafSet {
    ids: Vec<NodeId>,
}

impl LeafSet {
    pub fn new() -> LeafSet {
        LeafSet {
            ids: Vec::with_capacity(16),
        }
    }

    #[inline]
    pub fn clear(&mut self) {
        self.ids.clear();
    }

    /// Leaf ids in ascending order.
    #[inline]
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Insert preserving order; no-op if present.
    pub fn insert(&mut self, id: NodeId) {
        if let Err(pos) = self.ids.binary_search(&id) {
            self.ids.insert(pos, id);
        }
    }

    /// Merge another set into this one.
    pub fn merge(&mut self, other: &LeafSet) {
        for &id in &other.ids {
            self.insert(id);
        }
    }

    /// Replace contents with every id in `ids` (sorted, deduped).
    pub fn assign(&mut self, ids: &[NodeId]) {
        self.ids.clear();
        self.ids.extend_from_slice(ids);
        self.ids.sort_unstable();
        self.ids.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parquake_math::vec3::vec3;
    use parquake_math::Vec3;

    fn world() -> Aabb {
        Aabb::new(vec3(0.0, 0.0, 0.0), vec3(1024.0, 1024.0, 256.0))
    }

    #[test]
    fn default_depth_matches_paper_counts() {
        let t = AreanodeTree::new(world(), 4);
        assert_eq!(t.node_count(), 31);
        assert_eq!(t.leaf_count(), 16);
        // Paper's sweep: depth 1..=5 → 3..=63 nodes.
        assert_eq!(AreanodeTree::new(world(), 1).node_count(), 3);
        assert_eq!(AreanodeTree::new(world(), 5).node_count(), 63);
    }

    #[test]
    fn nodes_span_full_height() {
        let t = AreanodeTree::new(world(), 4);
        for id in 0..t.node_count() as NodeId {
            let n = t.node(id);
            assert_eq!(n.bounds.min.z, 0.0);
            assert_eq!(n.bounds.max.z, 256.0);
        }
    }

    #[test]
    fn children_partition_parent() {
        let t = AreanodeTree::new(world(), 3);
        for id in 0..t.node_count() as NodeId {
            let n = t.node(id);
            if let Some(plane) = n.plane {
                let f = t.node(n.children[0]);
                let b = t.node(n.children[1]);
                let ai = plane.axis.index();
                assert_eq!(f.bounds.min[ai], plane.dist);
                assert_eq!(b.bounds.max[ai], plane.dist);
                assert_eq!(f.bounds.union(&b.bounds), n.bounds);
                assert_eq!(f.parent, Some(id));
                assert_eq!(b.parent, Some(id));
            }
        }
    }

    #[test]
    fn axes_alternate_with_depth() {
        let t = AreanodeTree::new(world(), 4);
        for id in 0..t.node_count() as NodeId {
            let n = t.node(id);
            if let Some(plane) = n.plane {
                let expect = if n.depth.is_multiple_of(2) {
                    Axis::X
                } else {
                    Axis::Y
                };
                assert_eq!(plane.axis, expect, "node {id} depth {}", n.depth);
            }
        }
    }

    #[test]
    fn small_box_links_to_leaf() {
        let t = AreanodeTree::new(world(), 4);
        let b = Aabb::centered(vec3(100.0, 100.0, 50.0), Vec3::splat(10.0));
        let id = t.node_for_box(&b);
        assert!(t.is_leaf(id));
        assert!(t.node(id).bounds.contains(&b));
    }

    #[test]
    fn box_crossing_root_plane_links_to_root() {
        let t = AreanodeTree::new(world(), 4);
        let b = Aabb::centered(vec3(512.0, 100.0, 50.0), Vec3::splat(10.0));
        assert_eq!(t.node_for_box(&b), t.root());
    }

    #[test]
    fn box_crossing_deep_plane_links_to_that_parent() {
        let t = AreanodeTree::new(world(), 4);
        // Crosses the y = 512 plane but stays in x < 512: links to the
        // back child of the root.
        let b = Aabb::centered(vec3(100.0, 512.0, 50.0), Vec3::splat(10.0));
        let id = t.node_for_box(&b);
        assert_eq!(t.node(id).depth, 1);
        assert!(!t.is_leaf(id));
        assert!(t.node(id).bounds.contains(&b));
    }

    #[test]
    fn leaves_overlapping_brute_force_agreement() {
        let t = AreanodeTree::new(world(), 4);
        let mut plan = LeafSet::new();
        let boxes = [
            Aabb::centered(vec3(100.0, 100.0, 50.0), Vec3::splat(30.0)),
            Aabb::centered(vec3(512.0, 512.0, 50.0), Vec3::splat(80.0)),
            Aabb::centered(vec3(900.0, 200.0, 50.0), vec3(200.0, 40.0, 50.0)),
            world(), // everything
        ];
        for b in &boxes {
            t.leaves_overlapping(b, &mut plan);
            let brute: Vec<NodeId> = t
                .all_leaves()
                .iter()
                .copied()
                .filter(|&l| t.node(l).bounds.intersects(b))
                .collect();
            assert_eq!(plan.ids(), &brute[..], "box {b:?}");
        }
    }

    #[test]
    fn whole_world_overlaps_all_leaves() {
        let t = AreanodeTree::new(world(), 4);
        let mut plan = LeafSet::new();
        t.leaves_overlapping(&world(), &mut plan);
        assert_eq!(plan.len(), 16);
        assert_eq!(plan.ids(), t.all_leaves());
    }

    #[test]
    fn lock_plan_is_sorted_ascending() {
        let t = AreanodeTree::new(world(), 5);
        let mut plan = LeafSet::new();
        t.leaves_overlapping(
            &Aabb::centered(vec3(500.0, 500.0, 50.0), Vec3::splat(120.0)),
            &mut plan,
        );
        let mut sorted = plan.ids().to_vec();
        sorted.sort_unstable();
        assert_eq!(plan.ids(), &sorted[..]);
        assert!(plan.len() >= 2);
    }

    #[test]
    fn nodes_overlapping_includes_root_always() {
        let t = AreanodeTree::new(world(), 4);
        let mut nodes = Vec::new();
        let tiny = Aabb::centered(vec3(10.0, 10.0, 10.0), Vec3::splat(1.0));
        t.nodes_overlapping(&tiny, &mut nodes);
        assert_eq!(nodes[0], t.root());
        // A tiny box in a corner passes through exactly depth+1 nodes.
        assert_eq!(nodes.len(), 5);
    }

    #[test]
    fn ancestors_chain_to_root() {
        let t = AreanodeTree::new(world(), 4);
        let leaf = *t.all_leaves().last().unwrap();
        let anc = t.ancestors(leaf);
        assert_eq!(anc.len(), 4);
        assert_eq!(*anc.last().unwrap(), t.root());
    }

    #[test]
    fn leafset_insert_merge_dedup() {
        let mut a = LeafSet::new();
        a.insert(5);
        a.insert(1);
        a.insert(5);
        assert_eq!(a.ids(), &[1, 5]);
        let mut b = LeafSet::new();
        b.assign(&[9, 1, 3, 3]);
        assert_eq!(b.ids(), &[1, 3, 9]);
        a.merge(&b);
        assert_eq!(a.ids(), &[1, 3, 5, 9]);
        assert!(a.contains(3));
        assert!(!a.contains(4));
    }
}
