//! Per-areanode object lists with lock-discipline checking.
//!
//! `LinkTable` holds, for every areanode, the list of entity ids linked
//! to it. In the parallel server those lists are read and written
//! concurrently — correctness is guaranteed *by protocol*, not by an
//! internal mutex: a task must hold the region lock covering a node
//! before touching its list (leaf lock for leaves, the short parent
//! list lock for interior nodes). Routing synchronization through the
//! external lock manager is essential here: it lets the virtual-time
//! fabric account lock wait time, which is the very quantity the paper
//! measures.
//!
//! Rust cannot verify a protocol it does not see, so the lists live in
//! `UnsafeCell`s behind a safe API, and in debug builds (or whenever
//! checking is enabled) every access asserts that the calling task has
//! registered ownership of the node via [`LinkTable::note_locked`]. The
//! server's lock wrappers maintain these notes; tests deliberately
//! violate the protocol to prove the checker fires.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use crate::tree::NodeId;

/// Identifies the task (server thread) performing an access.
pub type TaskId = u32;

/// Sentinel: no task owns the node.
pub const NO_TASK: u32 = u32::MAX;

struct Slot {
    list: UnsafeCell<Vec<u32>>,
    /// Current lock owner when checking is enabled.
    owner: AtomicU32,
}

/// Object lists for every node of an areanode tree.
pub struct LinkTable {
    slots: Vec<Slot>,
    /// When false (sequential server, single-task tests), ownership
    /// assertions are skipped.
    checking: AtomicBool,
}

// SAFETY: concurrent access to the interior `Vec`s is governed by the
// external region-locking protocol; with checking enabled every access
// dynamically verifies single-owner access. The type is Sync so the
// server can share it across worker threads.
unsafe impl Sync for LinkTable {}
unsafe impl Send for LinkTable {}

impl LinkTable {
    /// A table with one (empty) list per tree node.
    pub fn new(node_count: usize) -> LinkTable {
        LinkTable {
            slots: (0..node_count)
                .map(|_| Slot {
                    list: UnsafeCell::new(Vec::new()),
                    owner: AtomicU32::new(NO_TASK),
                })
                .collect(),
            checking: AtomicBool::new(cfg!(debug_assertions)),
        }
    }

    /// Enable or disable ownership checking (off for sequential use).
    pub fn set_checking(&self, on: bool) {
        self.checking.store(on, Ordering::Release);
    }

    pub fn is_checking(&self) -> bool {
        self.checking.load(Ordering::Acquire)
    }

    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// Record that `task` now holds the lock covering `node`. Called by
    /// the server's lock wrappers, *after* the fabric lock is acquired.
    pub fn note_locked(&self, node: NodeId, task: TaskId) {
        if self.is_checking() {
            let prev = self.slots[node as usize].owner.swap(task, Ordering::AcqRel);
            assert_eq!(
                prev, NO_TASK,
                "lock protocol violation: node {node} already owned by task {prev} \
                 when task {task} locked it"
            );
        }
    }

    /// Record that `task` released the lock covering `node`.
    pub fn note_unlocked(&self, node: NodeId, task: TaskId) {
        if self.is_checking() {
            let prev = self.slots[node as usize]
                .owner
                .swap(NO_TASK, Ordering::AcqRel);
            assert_eq!(
                prev, task,
                "lock protocol violation: task {task} unlocked node {node} owned by {prev}"
            );
        }
    }

    #[inline]
    fn check_owner(&self, node: NodeId, task: TaskId) {
        if self.is_checking() {
            let owner = self.slots[node as usize].owner.load(Ordering::Acquire);
            assert_eq!(
                owner, task,
                "lock protocol violation: task {task} accessed node {node} owned by \
                 {owner} (NO_TASK = {NO_TASK})"
            );
        }
    }

    /// Read access to a node's list.
    pub fn with_list<R>(&self, node: NodeId, task: TaskId, f: impl FnOnce(&[u32]) -> R) -> R {
        self.check_owner(node, task);
        // SAFETY: protocol (checked above when enabled) guarantees
        // exclusive access for the duration of the closure.
        let list = unsafe { &*self.slots[node as usize].list.get() };
        f(list)
    }

    /// Append an entity id to a node's list.
    pub fn push(&self, node: NodeId, task: TaskId, ent: u32) {
        self.check_owner(node, task);
        // SAFETY: see `with_list`.
        let list = unsafe { &mut *self.slots[node as usize].list.get() };
        debug_assert!(!list.contains(&ent), "entity {ent} double-linked to {node}");
        list.push(ent);
    }

    /// Remove an entity id from a node's list. Returns true if present.
    pub fn remove(&self, node: NodeId, task: TaskId, ent: u32) -> bool {
        self.check_owner(node, task);
        // SAFETY: see `with_list`.
        let list = unsafe { &mut *self.slots[node as usize].list.get() };
        if let Some(pos) = list.iter().position(|&e| e == ent) {
            list.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Current list length.
    pub fn len(&self, node: NodeId, task: TaskId) -> usize {
        self.with_list(node, task, |l| l.len())
    }

    /// True when the node's list is empty.
    pub fn is_empty(&self, node: NodeId, task: TaskId) -> bool {
        self.len(node, task) == 0
    }

    /// Copy a node's list into `out` (appending).
    pub fn extend_into(&self, node: NodeId, task: TaskId, out: &mut Vec<u32>) {
        self.with_list(node, task, |l| out.extend_from_slice(l));
    }

    /// Wipe every list (between experiments). Requires no concurrent
    /// users; takes `&mut self` to enforce that statically.
    pub fn clear_all(&mut self) {
        for slot in &self.slots {
            // SAFETY: `&mut self` guarantees exclusivity.
            unsafe { (*slot.list.get()).clear() };
            slot.owner.store(NO_TASK, Ordering::Release);
        }
    }

    /// Total number of linked entities across all nodes (diagnostic;
    /// requires quiescence, enforced by `&mut self`).
    pub fn total_links(&mut self) -> usize {
        self.slots
            .iter()
            .map(|s| unsafe { (*s.list.get()).len() })
            .sum()
    }

    /// Snapshot every `(node, entity)` link for consistency audits.
    ///
    /// # Contract
    /// The table must be externally quiescent (no concurrent server
    /// activity) — intended for post-run verification in tests.
    pub fn snapshot_links(&self) -> Vec<(NodeId, u32)> {
        let mut out = Vec::new();
        for (node, slot) in self.slots.iter().enumerate() {
            // SAFETY: quiescence per the documented contract.
            let list = unsafe { &*slot.list.get() };
            for &e in list {
                out.push((node as NodeId, e));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_push_remove_with_checking_disabled() {
        let t = LinkTable::new(4);
        t.set_checking(false);
        t.push(2, 0, 10);
        t.push(2, 0, 11);
        assert_eq!(t.len(2, 0), 2);
        assert!(t.remove(2, 0, 10));
        assert!(!t.remove(2, 0, 10));
        assert_eq!(t.len(2, 0), 1);
        t.with_list(2, 0, |l| assert_eq!(l, &[11]));
    }

    #[test]
    fn checked_access_with_lock_notes_passes() {
        let t = LinkTable::new(4);
        t.set_checking(true);
        t.note_locked(1, 7);
        t.push(1, 7, 42);
        assert_eq!(t.len(1, 7), 1);
        t.note_unlocked(1, 7);
    }

    #[test]
    #[should_panic(expected = "lock protocol violation")]
    fn unlocked_access_panics_when_checking() {
        let t = LinkTable::new(4);
        t.set_checking(true);
        t.push(1, 7, 42); // no note_locked: protocol violation
    }

    #[test]
    #[should_panic(expected = "lock protocol violation")]
    fn wrong_task_access_panics() {
        let t = LinkTable::new(4);
        t.set_checking(true);
        t.note_locked(1, 7);
        t.push(1, 8, 42); // task 8 touching task 7's region
    }

    #[test]
    #[should_panic(expected = "lock protocol violation")]
    fn double_lock_panics() {
        let t = LinkTable::new(4);
        t.set_checking(true);
        t.note_locked(1, 7);
        t.note_locked(1, 8);
    }

    #[test]
    #[should_panic(expected = "lock protocol violation")]
    fn mismatched_unlock_panics() {
        let t = LinkTable::new(4);
        t.set_checking(true);
        t.note_locked(1, 7);
        t.note_unlocked(1, 9);
    }

    #[test]
    fn clear_all_resets_lists_and_owners() {
        let mut t = LinkTable::new(3);
        t.set_checking(false);
        t.push(0, 0, 1);
        t.push(1, 0, 2);
        assert_eq!(t.total_links(), 2);
        t.clear_all();
        assert_eq!(t.total_links(), 0);
    }

    #[test]
    fn extend_into_appends() {
        let t = LinkTable::new(2);
        t.set_checking(false);
        t.push(0, 0, 5);
        t.push(1, 0, 6);
        let mut out = vec![99];
        t.extend_into(0, 0, &mut out);
        t.extend_into(1, 0, &mut out);
        assert_eq!(out, vec![99, 5, 6]);
    }

    #[test]
    fn concurrent_disjoint_nodes_are_safe() {
        // Two threads working on different nodes with proper notes.
        let t = std::sync::Arc::new(LinkTable::new(8));
        t.set_checking(true);
        let mut handles = Vec::new();
        for task in 0..4u32 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                let node = task; // disjoint node per task
                for i in 0..1000 {
                    t.note_locked(node, task);
                    t.push(node, task, i);
                    t.remove(node, task, i);
                    t.note_unlocked(node, task);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
