//! The areanode tree (paper §2.2) and its dynamic object links.
//!
//! The server maintains, next to the BSP, a balanced binary tree that
//! recursively halves the world volume along alternating X/Y axis
//! planes. It answers one question fast: *which game objects can a move
//! with this bounding box interact with?* In the parallel server it is
//! also the **locking substrate** (paper §3.3): each leaf is a lockable
//! region of the world, and objects crossing division planes hang off
//! interior ("parent") nodes whose object lists get short-duration
//! locks.
//!
//! The crate splits the structure into:
//!
//! * [`AreanodeTree`] — immutable geometry: node bounds, split planes,
//!   leaf-set queries and lock-plan computation,
//! * [`LinkTable`] — the mutable per-node object lists, guarded by the
//!   *external* region-locking protocol; in debug builds every access
//!   verifies the accessing task actually holds the covering lock,
//! * [`LeafSet`] — an ordered, deduplicated set of leaf indices, the
//!   deadlock-free lock acquisition plan for one move.

pub mod link;
pub mod tree;

pub use link::{LinkTable, TaskId, NO_TASK};
pub use tree::{AreanodeTree, LeafSet, NodeId};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use parquake_math::vec3::vec3;
    use parquake_math::Aabb;

    #[test]
    fn tree_and_links_work_together() {
        let bounds = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(1024.0, 1024.0, 256.0));
        let tree = AreanodeTree::new(bounds, 4);
        let links = LinkTable::new(tree.node_count());
        links.set_checking(false);

        // Link an object near a corner; it must land in a leaf.
        let obb = Aabb::centered(vec3(100.0, 100.0, 50.0), vec3(16.0, 16.0, 28.0));
        let node = tree.node_for_box(&obb);
        assert!(tree.is_leaf(node));
        links.push(node, 0, 7);
        assert_eq!(links.len(node, 0), 1);

        // An object straddling the root plane links to the root.
        let straddle = Aabb::centered(vec3(512.0, 100.0, 50.0), vec3(16.0, 16.0, 28.0));
        let root_node = tree.node_for_box(&straddle);
        assert_eq!(root_node, tree.root());
        assert!(!tree.is_leaf(root_node));
    }
}
