//! # parquake
//!
//! A from-scratch Rust reproduction of *“Parallelization and Performance
//! of Interactive Multiplayer Game Servers”* (Abdelkhalek & Bilas,
//! IPDPS 2004): a Quake-class interactive game server, its sequential
//! and multithreaded variants, the region-locking schemes the paper
//! introduces, synthetic bot players, and a harness that regenerates
//! every table and figure of the paper's evaluation.
//!
//! This façade crate re-exports the public API of every workspace member
//! so downstream users can depend on `parquake` alone.
//!
//! ## Quick start
//!
//! ```no_run
//! use parquake::prelude::*;
//!
//! // A deterministic arena map and a 4-thread parallel server with 64
//! // bots on the virtual SMP fabric.
//! let exp = Experiment::new(ExperimentConfig {
//!     players: 64,
//!     map: MapGenConfig::large_arena(0xC0FFEE),
//!     server: ServerKind::Parallel {
//!         threads: 4,
//!         locking: LockPolicy::Optimized,
//!     },
//!     ..ExperimentConfig::default()
//! });
//! let outcome = exp.run();
//! println!("{} replies/s", outcome.response_rate());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/harness` for the
//! paper-figure reproduction binary (`repro`).

pub use parquake_areanode as areanode;
pub use parquake_bots as bots;
pub use parquake_bsp as bsp;
pub use parquake_fabric as fabric;
pub use parquake_harness as harness;
pub use parquake_math as math;
pub use parquake_metrics as metrics;
pub use parquake_protocol as protocol;
pub use parquake_server as server;
pub use parquake_sim as sim;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use parquake_areanode::{AreanodeTree, LeafSet};
    pub use parquake_bots::{BotBehavior, BotSwarmConfig};
    pub use parquake_bsp::mapgen::MapGenConfig;
    pub use parquake_bsp::{BspWorld, Trace};
    pub use parquake_fabric::{FabricKind, VirtualSmpConfig};
    pub use parquake_harness::experiment::{Experiment, ExperimentConfig, Outcome};
    pub use parquake_math::{Aabb, Vec3};
    pub use parquake_metrics::{Breakdown, Bucket};
    pub use parquake_protocol::{MoveCmd, ServerMessage};
    pub use parquake_server::{Assignment, LockPolicy, ServerConfig, ServerKind};
}
