//! Substrate tour: build a world by hand and poke at the pieces the
//! servers are made of — BSP collision traces, the areanode tree, lock
//! plans, and room-based visibility. No server, no bots.
//!
//! ```sh
//! cargo run --release --example world_tour
//! ```

use parquake::areanode::LeafSet;
use parquake::bsp::Hull;
use parquake::math::vec3::vec3;
use parquake::math::{Aabb, Vec3};
use parquake::prelude::*;

fn main() {
    // A one-room hall with pillars, then the standard maze.
    let hall = MapGenConfig::open_hall(7).generate();
    let maze = MapGenConfig::eval_arena(7).generate();

    println!("== BSP compilation ==");
    for (name, w) in [("open hall", &hall), ("eval maze", &maze)] {
        println!(
            "{name:>10}: {} brushes -> point hull {} nodes (depth {}), player hull {} nodes",
            w.brushes.len(),
            w.hull_point.node_count(),
            w.hull_point.depth(),
            w.hull_player.node_count(),
        );
    }

    println!("\n== collision traces (eval maze) ==");
    let start = maze.spawn_points[0];
    for (label, dir) in [
        ("east", vec3(1.0, 0.0, 0.0)),
        ("north", vec3(0.0, 1.0, 0.0)),
        ("down", vec3(0.0, 0.0, -1.0)),
    ] {
        let tr = maze.trace(Hull::Player, start, start.mul_add(dir, 4096.0));
        println!(
            "  {label:>5}: travelled {:7.1} units, {} BSP nodes visited{}",
            (tr.end - start).length(),
            tr.steps,
            if tr.hit() { " (hit a wall)" } else { "" },
        );
    }

    println!("\n== areanode tree & lock plans ==");
    let tree = AreanodeTree::new(maze.bounds, 4);
    println!(
        "  depth 4: {} nodes, {} leaves (the paper's default 31/16)",
        tree.node_count(),
        tree.leaf_count()
    );
    let mut plan = LeafSet::new();
    let player_box = Aabb::centered(start, vec3(16.0, 16.0, 28.0));
    // A short move and a long-range directional beam.
    let move_box = player_box.inflated(Vec3::splat(45.0));
    tree.leaves_overlapping(&move_box, &mut plan);
    println!(
        "  short move near a spawn locks {} leaves: {:?}",
        plan.len(),
        plan.ids()
    );
    let beam = Aabb::from_corners(start, start + vec3(4096.0, 120.0, 0.0));
    tree.leaves_overlapping(&beam, &mut plan);
    println!(
        "  an eastward hitscan beam locks {} leaves (directional policy)",
        plan.len()
    );
    println!(
        "  conservative long-range policy locks all {} leaves",
        tree.leaf_count()
    );

    println!("\n== room visibility ==");
    let rooms = &maze.rooms;
    let a = rooms.room_of(maze.spawn_points[0]);
    let far = rooms.room_of(*maze.spawn_points.last().unwrap());
    println!(
        "  room {a} sees {} of {} rooms; far room {far} visible from {a}? {}",
        rooms.visible_count(a),
        rooms.room_count(),
        rooms.rooms_visible(a, far),
    );
    println!(
        "  => replies to a client in room {a} carry only entities in its \
         {}-room PVS, which is what keeps reply cost bounded",
        rooms.visible_count(a)
    );
}
