//! Quickstart: generate a world, run a parallel game server with a bot
//! swarm on the deterministic virtual SMP, and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parquake::prelude::*;

fn main() {
    // A deterministic maze arena (the paper's evaluation-map stand-in).
    let map = MapGenConfig::eval_arena(0xC0FFEE);
    println!(
        "map: {}x{} rooms (compiles to a few hundred brushes)",
        map.grid_w, map.grid_h
    );

    // 64 deathmatch bots against a 4-thread parallel server with the
    // paper's optimized (expanded/directional) locking.
    let exp = Experiment::new(ExperimentConfig {
        players: 64,
        map,
        server: ServerKind::Parallel {
            threads: 4,
            locking: LockPolicy::Optimized,
        },
        duration_ns: 5_000_000_000, // 5 virtual seconds
        ..ExperimentConfig::default()
    });
    let out = exp.run();

    println!("connected bots : {}", out.connected);
    println!("server frames  : {}", out.server.frame_count);
    println!("response rate  : {:.0} replies/s", out.response_rate());
    println!("response time  : {:.2} ms avg", out.avg_response_ms());

    let bd = out.breakdown();
    println!("\nwhere server threads spent their time:");
    for bucket in Bucket::ALL {
        println!("  {:>10}: {:5.1}%", bucket.label(), bd.percent(bucket));
    }

    let merged = out.server.merged();
    println!(
        "\nlocking: {} leaf acquisitions, {} parent list locks",
        merged.lock.leaf_ops, merged.lock.parent_ops
    );
    println!(
        "         {:.1}% of the world locked per request on average",
        merged.lock.avg_distinct_leaf_percent()
    );
    println!("\nThe same seed always reproduces exactly this run.");
}
