//! Run the same parallel server on REAL OS threads instead of the
//! virtual-time SMP: identical code path, true preemption, wall-clock
//! measurements. On a multicore host this measures genuine scaling; on
//! any host it demonstrates the locking protocol is correct under real
//! concurrency (run a debug build to enable the dynamic protocol
//! checkers).
//!
//! ```sh
//! cargo run --release --example real_threads
//! ```

use parquake::fabric::FabricKind;
use parquake::prelude::*;

fn main() {
    let threads = 2;
    let players = 16;
    println!(
        "real-thread fabric: {threads} server threads, {players} bots, 2 wall seconds \
         (host has {} CPUs)\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let exp = Experiment::new(ExperimentConfig {
        players,
        map: MapGenConfig::small_arena(99),
        server: ServerKind::Parallel {
            threads,
            locking: LockPolicy::Optimized,
        },
        fabric: FabricKind::Real,
        duration_ns: 2_000_000_000,
        // Enable the lock/claim protocol checkers even in release: this
        // example exists to exercise the protocol under real preemption.
        checking: true,
        ..ExperimentConfig::default()
    });
    let out = exp.run();
    println!("connected      : {}/{players}", out.connected);
    println!("replies        : {}", out.response.received);
    println!("response rate  : {:.0} replies/s", out.response_rate());
    println!("response time  : {:.2} ms avg", out.avg_response_ms());
    let bd = out.breakdown();
    println!(
        "lock {:.1}%  waits {:.1}%  idle {:.1}%",
        bd.percent(Bucket::Lock),
        bd.percent(Bucket::IntraWait) + bd.percent(Bucket::InterWait),
        bd.percent(Bucket::Idle),
    );
    println!("\nNo protocol violations were detected by the dynamic checkers.");
}
