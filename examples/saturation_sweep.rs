//! The headline experiment as a terminal chart: sweep the player count
//! across server configurations and draw response rate and response
//! time, making the saturation knees visible at a glance.
//!
//! ```sh
//! cargo run --release --example saturation_sweep
//! ```

use parquake::prelude::*;

fn run(players: u32, server: ServerKind) -> (f64, f64) {
    let out = Experiment::new(ExperimentConfig {
        players,
        server,
        map: MapGenConfig::eval_arena(0x6D_6D_31),
        duration_ns: 4_000_000_000,
        checking: false,
        ..ExperimentConfig::default()
    })
    .run();
    (out.response_rate(), out.avg_response_ms())
}

fn bar(value: f64, max: f64, width: usize) -> String {
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

fn main() {
    let players = [64u32, 96, 128, 144, 160];
    let configs = [
        ("sequential", ServerKind::Sequential),
        (
            "4T baseline",
            ServerKind::Parallel {
                threads: 4,
                locking: LockPolicy::Baseline,
            },
        ),
        (
            "4T optimized",
            ServerKind::Parallel {
                threads: 4,
                locking: LockPolicy::Optimized,
            },
        ),
    ];

    println!("response rate (replies/s) vs offered load — knees mark saturation\n");
    let max_rate = 160.0 * 33.4;
    for (name, kind) in configs {
        println!("-- {name} --");
        for &p in &players {
            let (rate, resp) = run(p, kind);
            let offered = p as f64 * 33.33;
            let marker = if rate < offered * 0.97 {
                "  <- saturated"
            } else {
                ""
            };
            println!(
                "{p:>4}p |{:<40}| {rate:>5.0}/{offered:>5.0}  {resp:>6.1} ms{marker}",
                bar(rate, max_rate, 40),
            );
        }
        println!();
    }
    println!(
        "The paper's result in one picture: the sequential server gives out\n\
         around 128 players, baseline locking buys little, and optimized\n\
         region locking carries the same machine ~25% further."
    );
}
