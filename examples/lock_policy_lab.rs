//! The paper's §4.3 in miniature: how much does game-knowledge locking
//! buy? Runs the same saturated workload under conservative (baseline)
//! and optimized (expanded/directional) region locking and compares
//! lock time, wait time and delivered response rate.
//!
//! ```sh
//! cargo run --release --example lock_policy_lab
//! ```

use parquake::prelude::*;
use parquake::server::LockPolicy as Policy;

fn run(policy: Policy, players: u32) -> Outcome {
    Experiment::new(ExperimentConfig {
        players,
        map: MapGenConfig::eval_arena(42),
        server: ServerKind::Parallel {
            threads: 4,
            locking: policy,
        },
        duration_ns: 5_000_000_000,
        checking: false,
        ..ExperimentConfig::default()
    })
    .run()
}

fn main() {
    let players = 144; // near the 4-thread saturation knee
    println!("4 threads, {players} players, 5 virtual seconds per policy\n");
    println!(
        "{:<12} {:>10} {:>9} {:>7} {:>7} {:>7}",
        "policy", "replies/s", "resp-ms", "lock%", "wait%", "idle%"
    );
    for (name, policy) in [
        ("baseline", Policy::Baseline),
        ("optimized", Policy::Optimized),
    ] {
        let out = run(policy, players);
        let bd = out.breakdown();
        println!(
            "{:<12} {:>10.0} {:>9.1} {:>6.1}% {:>6.1}% {:>6.1}%",
            name,
            out.response_rate(),
            out.avg_response_ms(),
            bd.percent(Bucket::Lock),
            bd.percent(Bucket::IntraWait) + bd.percent(Bucket::InterWait),
            bd.percent(Bucket::Idle),
        );
    }
    println!(
        "\nBaseline locks the entire map for every long-range action \
         (hitscan fire, thrown projectiles); optimized locking shrinks \
         that to a directional beam or an expanded bounding box, which \
         is where the improvement comes from (paper Figure 6)."
    );
}
