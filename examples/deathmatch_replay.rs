//! A deathmatch session viewed from the game side rather than the
//! systems side: run a short match and report what the *simulation* did
//! — scores, deaths, item pickups — demonstrating that the benchmark
//! workload is a real game, not a synthetic load loop.
//!
//! ```sh
//! cargo run --release --example deathmatch_replay
//! ```

use parquake::bots::BotBehavior;
use parquake::prelude::*;
use parquake::sim::entity::EntityClass;

fn main() {
    let map_cfg = MapGenConfig::small_arena(0xDEAD);
    let players = 24u32;
    let exp = Experiment::new(ExperimentConfig {
        players,
        map: map_cfg.clone(),
        server: ServerKind::Parallel {
            threads: 2,
            locking: LockPolicy::Optimized,
        },
        behavior: BotBehavior {
            attack_chance: 0.20, // trigger-happy bots for a lively match
            ..BotBehavior::deathmatch()
        },
        duration_ns: 8_000_000_000,
        checking: false,
        ..ExperimentConfig::default()
    });
    let out = exp.run();

    println!(
        "== match report ({} players, 8 virtual seconds) ==\n",
        out.connected
    );
    println!("moves answered : {}", out.response.received);
    println!("server frames  : {}", out.server.frame_count);
    println!(
        "arena          : {}x{} rooms, {} items, {} teleporters",
        map_cfg.grid_w,
        map_cfg.grid_h,
        out.world.item_ids().len(),
        out.world.map.teleporters.len(),
    );

    // Scoreboard straight out of the final world state.
    let mut scores: Vec<(u32, i32, i32)> = Vec::new();
    for i in 0..players as u16 {
        if let EntityClass::Player {
            client_id,
            health,
            score,
            ..
        } = out.world.store.snapshot(i).class
        {
            scores.push((client_id, score, health));
        }
    }
    scores.sort_by_key(|&(_, s, _)| -s);
    println!("\ntop fraggers:");
    for (cid, score, health) in scores.iter().take(8) {
        println!("  bot {cid:>3}: score {score:>4}  health {health:>3}");
    }

    // Items currently waiting to respawn = recently contested pickups.
    let taken = out
        .world
        .item_ids()
        .filter(|&i| {
            matches!(
                out.world.store.snapshot(i).class,
                EntityClass::Item { taken: true, .. }
            )
        })
        .count();
    println!("\nitems awaiting respawn at match end: {taken}");
    println!(
        "world hash: {:#018x} (same seed => same match, bit for bit)",
        out.world_hash
    );
}
