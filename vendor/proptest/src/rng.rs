//! Deterministic PCG32 generator seeding each test case from the test
//! path and case index, so failures reproduce without persisted seeds.

const PCG_MULT: u64 = 6364136223846793005;

/// Per-case random source handed to strategies.
pub struct TestRng {
    state: u64,
    inc: u64,
}

impl TestRng {
    /// Build the generator for case `case` of the test named `path`.
    pub fn for_case(path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut rng = TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e3779b97f4a7c15)),
            inc: (h.rotate_left(17) | 1),
        };
        // Scramble away from the seed structure.
        rng.next_u32();
        rng.next_u32();
        rng
    }

    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at property-test scale.
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
