//! `any::<T>()` for the primitive types the tests request.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

// Finite floats only: the workspace round-trips values through fixed
// layouts where NaN-vs-NaN comparison noise would add nothing.
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        ((rng.unit_f64() - 0.5) * 2.0e9) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2.0e18
    }
}

/// Strategy returned by `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
