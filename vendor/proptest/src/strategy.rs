//! The `Strategy` trait plus the combinators the workspace uses:
//! ranges, tuples, `prop_map`, `Just`, boxing and `Union` (backing
//! `prop_oneof!`).

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for one property-test argument.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strat: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strat.generate(rng))
    }
}

/// Type-erased strategy (`Strategy::boxed`, `prop_oneof!` arms).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
