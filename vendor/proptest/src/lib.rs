//! Offline deterministic stand-in for the `proptest` API subset this
//! workspace uses.
//!
//! The build container has no registry access, so this crate
//! re-implements the parts of proptest the test suites rely on:
//! `Strategy` with `prop_map`/`boxed`, range and tuple strategies,
//! `any::<T>()`, `prop::collection::vec`, `prop_oneof!`, the
//! `proptest!` macro and the `prop_assert*` family. Differences from
//! real proptest:
//!
//! * Cases are generated from a PCG32 seeded by the test's module path
//!   and name — fully deterministic across runs and hosts, no
//!   persistence files (`*.proptest-regressions` are ignored).
//! * There is **no shrinking**: a failing case reports its index and
//!   message; re-running reproduces it exactly.
//! * Default case count is 64 (`ProptestConfig::with_cases` overrides).

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

/// `proptest::prelude` lookalike.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` path used for `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Choose uniformly between heterogeneous strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} ({})\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l
        );
    }};
}

/// The `proptest! { ... }` block: zero or more `#[test] fn name(pat in
/// strategy, ...) { body }` items, optionally preceded by
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut __rng = $crate::rng::TestRng::for_case(test_path, case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("{test_path} failed at case {case}/{}: {e}", config.cases);
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        1u32..10
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in small(), y in -5i64..5) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn tuples_and_map(v in (0u8..4, 0u8..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 6);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            for x in v {
                prop_assert!(x < 100, "x = {x}");
            }
        }

        #[test]
        fn oneof_covers_all_arms(x in prop_oneof![0u32..1, 10u32..11, 20u32..21]) {
            prop_assert!(x == 0 || x == 10 || x == 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_honored(_x in any::<u64>()) {
            // Runs exactly 7 cases; nothing to assert beyond arriving here.
        }
    }

    #[test]
    fn determinism_across_rng_instances() {
        let mut a = crate::rng::TestRng::for_case("t", 3);
        let mut b = crate::rng::TestRng::for_case("t", 3);
        let s = 0u64..1_000_000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
