//! Case-count configuration and the error type `prop_assert!` raises.

use std::fmt;

/// Subset of proptest's config: just the case count.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert*` inside one generated case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}
