//! `prop::collection::vec(strategy, size)` where `size` is an exact
//! length, a `Range<usize>` or a `RangeInclusive<usize>`.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Length specification accepted by [`vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
