//! Offline stand-in for the `bytes` crate: just the `Buf`/`BufMut`
//! little-endian primitive accessors the protocol codec uses,
//! implemented for `&[u8]` and `Vec<u8>`.

/// Read cursor over a byte source. Implemented for `&[u8]`, which
/// advances the slice in place (the codec's `&mut &[u8]` idiom).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf::copy_to_slice out of bounds");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink for bytes. Implemented for `Vec<u8>`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xDEADBEEF);
        out.put_u64_le(u64::MAX - 1);
        out.put_f32_le(-2.25);
        let mut buf = &out[..];
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 4);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16_le(), 0x1234);
        assert_eq!(buf.get_u32_le(), 0xDEADBEEF);
        assert_eq!(buf.get_u64_le(), u64::MAX - 1);
        assert_eq!(buf.get_f32_le(), -2.25);
        assert_eq!(buf.remaining(), 0);
    }
}
