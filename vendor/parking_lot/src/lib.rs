//! Offline stand-in for the `parking_lot` API subset `parquake` uses.
//!
//! The build container has no registry access, so this crate re-creates
//! the handful of `parking_lot` types the fabric needs on top of
//! `std::sync`. Semantics match where it matters for the fabric:
//! guards are not poisoned (a panic while holding simply releases), and
//! `RawMutex` may be unlocked from a context other than the acquiring
//! scope, which `std::sync::Mutex` guards cannot express.
//!
//! Only the surface actually exercised by this workspace is provided.

use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Instant;

pub mod lock_api {
    /// The slice of `lock_api::RawMutex` the fabric imports (the `INIT`
    /// associated constant used to build lock tables).
    pub trait RawMutex {
        const INIT: Self;
        fn lock(&self);
        fn try_lock(&self) -> bool;
        /// # Safety
        /// The caller must own the lock (acquired via `lock`/`try_lock`
        /// and not yet released).
        unsafe fn unlock(&self);
    }
}

/// A mutex whose lock/unlock need not be scoped to one stack frame:
/// `unlock` may be called by the logical owner from any point. Built on
/// a flag + condvar so release from "elsewhere" is expressible.
pub struct RawMutex {
    locked: StdMutex<bool>,
    cv: StdCondvar,
}

impl RawMutex {
    #[allow(clippy::declare_interior_mutable_const)]
    pub const INIT: RawMutex = RawMutex {
        locked: StdMutex::new(false),
        cv: StdCondvar::new(),
    };

    pub fn lock(&self) {
        let mut held = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        while *held {
            held = self.cv.wait(held).unwrap_or_else(|e| e.into_inner());
        }
        *held = true;
    }

    pub fn try_lock(&self) -> bool {
        let mut held = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        if *held {
            false
        } else {
            *held = true;
            true
        }
    }

    /// # Safety
    /// Caller must hold the lock (protocol-enforced by the fabric).
    pub unsafe fn unlock(&self) {
        let mut held = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(*held, "RawMutex::unlock of an unheld lock");
        *held = false;
        self.cv.notify_one();
    }
}

impl lock_api::RawMutex for RawMutex {
    #[allow(clippy::declare_interior_mutable_const)]
    const INIT: RawMutex = RawMutex::INIT;
    fn lock(&self) {
        RawMutex::lock(self)
    }
    fn try_lock(&self) -> bool {
        RawMutex::try_lock(self)
    }
    unsafe fn unlock(&self) {
        RawMutex::unlock(self)
    }
}

/// `parking_lot::Mutex`: like `std::sync::Mutex` but `lock()` returns
/// the guard directly (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(t),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// `parking_lot::Condvar`: waits take `&mut MutexGuard` instead of
/// consuming and returning the guard.
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let now = Instant::now();
            let dur = deadline.saturating_duration_since(now);
            if dur.is_zero() {
                timed_out = true;
                return g;
            }
            let (g, r) = self.inner.wait_timeout(g, dur).unwrap_or_else(|e| {
                let (g, r) = e.into_inner();
                (g, r)
            });
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Run `f` on the std guard inside `guard`, replacing it with the guard
/// `f` returns (std condvar waits consume and return the guard; the
/// parking_lot API mutates in place).
fn replace_guard<T>(
    guard: &mut MutexGuard<'_, T>,
    f: impl FnOnce(StdMutexGuard<'_, T>) -> StdMutexGuard<'_, T>,
) {
    // An unwind between the read and the write would leave `guard`
    // holding a moved-out value (double drop); abort instead.
    struct Bomb;
    impl Drop for Bomb {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    // SAFETY: `inner` is re-initialized with a guard of the same mutex
    // and lifetime before anyone can observe the moved-out state; the
    // bomb turns any panic inside `f` into an abort.
    unsafe {
        let bomb = Bomb;
        let g = std::ptr::read(&guard.inner);
        let g = f(g);
        std::ptr::write(&mut guard.inner, g);
        std::mem::forget(bomb);
    }
}

/// `parking_lot::RwLock` (no poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(t: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(t),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + std::time::Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn raw_mutex_cross_scope_unlock() {
        let m = Arc::new(RawMutex::INIT);
        assert!(m.try_lock());
        assert!(!m.try_lock());
        unsafe { m.unlock() };
        assert!(m.try_lock());
        unsafe { m.unlock() };
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
