//! Offline stand-in for the `criterion` API subset the benches use.
//!
//! No statistics, plots or warm-up heuristics: each bench runs its body
//! `sample_size` times and prints the mean wall-clock time per
//! iteration. Enough to keep `cargo bench` usable for eyeballing the
//! figure-reproduction timings without the real crate.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one bench within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Runs the measured closure.
pub struct Bencher {
    iters: u32,
    total_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total_ns = start.elapsed().as_nanos();
    }
}

/// A named set of related benches.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            total_ns: 0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            total_ns: 0,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.total_ns / b.iters.max(1) as u128;
        println!(
            "bench {}/{}: {} iters, {} ns/iter",
            self.name, id.label, b.iters, per_iter
        );
    }
}

/// Entry point handed to each bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        self.benchmark_group(name).bench_function("bench", f);
        self
    }
}

/// Defines `fn $group()` running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main()` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
